//! The cycle-accurate out-of-order engine.
//!
//! Execution-driven from the functional simulator ([`rsr_func::Cpu`]): the
//! fetch stage pulls architecturally retired records in program order and
//! times them through a 7-stage superscalar pipeline (fetch, two front-end
//! stages, issue, execute, writeback, commit). Wrong-path instructions are
//! not fabricated; instead a mispredicted branch stalls fetch until it
//! resolves — the standard oracle-driven mispredict model — with the
//! paper's 5-cycle minimum penalty enforced.

use std::collections::{BTreeSet, VecDeque};

use rsr_branch::{PredCtrlKind, Prediction, Predictor};
use rsr_cache::{HierAccess, MemHierarchy};
use rsr_func::{Cpu, ExecError, Retired};
use rsr_isa::{CtrlKind, OpClass};

use crate::CoreConfig;

/// A hook invoked immediately before every fetch-time branch prediction.
///
/// This is the integration point for the paper's *on-demand* branch
/// predictor reconstruction (§3.2): the RSR warm-up installs a hook that,
/// when the probed PHT/BTB entry has not been reconstructed yet, consumes
/// the reverse skip-region log far enough to reconstruct it.
pub trait PredictHook {
    /// Called with the predictor, the branch PC, and its kind, before
    /// `Predictor::predict` runs for that branch.
    fn before_predict(&mut self, pred: &mut Predictor, pc: u64, kind: PredCtrlKind);
}

/// A no-op hook for plain (non-reconstructing) simulation.
#[derive(Copy, Clone, Debug, Default)]
pub struct NoHook;

impl PredictHook for NoHook {
    #[inline(always)]
    fn before_predict(&mut self, _pred: &mut Predictor, _pc: u64, _kind: PredCtrlKind) {}
}

/// Measurements from one hot (cycle-accurate) simulation window.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct HotStats {
    /// Cycles elapsed.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Fully mispredicted control transfers (resolved at execute).
    pub full_mispredicts: u64,
    /// Decode-stage redirects (direct transfer with a BTB miss).
    pub decode_redirects: u64,
}

impl HotStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

fn to_pred_kind(kind: CtrlKind) -> PredCtrlKind {
    match kind {
        CtrlKind::CondBranch => PredCtrlKind::CondBranch,
        CtrlKind::Jump => PredCtrlKind::Jump,
        CtrlKind::Call => PredCtrlKind::Call,
        CtrlKind::IndirectCall => PredCtrlKind::IndirectCall,
        CtrlKind::Return => PredCtrlKind::Return,
        CtrlKind::IndirectJump => PredCtrlKind::IndirectJump,
    }
}

/// Unified register id space: integer `x1..x31` → `1..=31`, floating-point
/// `f0..f31` → `32..=63`. `x0` maps to `None` (never a dependency).
fn int_src(r: u8) -> Option<u8> {
    (r != 0).then_some(r)
}

fn fp_src(r: u8) -> Option<u8> {
    Some(32 + r)
}

/// Source and destination registers of an instruction in the unified space.
fn operands(r: &Retired) -> ([Option<u8>; 2], Option<u8>) {
    use rsr_isa::Op::*;
    let i = &r.inst;
    match i.op {
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu => {
            ([int_src(i.rs1), int_src(i.rs2)], int_src(i.rd))
        }
        Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Sltiu => {
            ([int_src(i.rs1), None], int_src(i.rd))
        }
        Lui => ([None, None], int_src(i.rd)),
        Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld => ([int_src(i.rs1), None], int_src(i.rd)),
        Fld => ([int_src(i.rs1), None], fp_src(i.rd)),
        Sb | Sh | Sw | Sd => ([int_src(i.rs1), int_src(i.rs2)], None),
        Fsd => ([int_src(i.rs1), fp_src(i.rs2)], None),
        Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax => ([fp_src(i.rs1), fp_src(i.rs2)], fp_src(i.rd)),
        Fsqrt => ([fp_src(i.rs1), None], fp_src(i.rd)),
        Feq | Flt | Fle => ([fp_src(i.rs1), fp_src(i.rs2)], int_src(i.rd)),
        Fcvtdl => ([int_src(i.rs1), None], fp_src(i.rd)),
        Fcvtld => ([fp_src(i.rs1), None], int_src(i.rd)),
        Fmvdx => ([int_src(i.rs1), None], fp_src(i.rd)),
        Fmvxd => ([fp_src(i.rs1), None], int_src(i.rd)),
        Beq | Bne | Blt | Bge | Bltu | Bgeu => ([int_src(i.rs1), int_src(i.rs2)], None),
        Jal => ([None, None], int_src(i.rd)),
        Jalr => ([int_src(i.rs1), None], int_src(i.rd)),
        Halt | Nop => ([None, None], None),
    }
}

#[derive(Clone, Debug)]
struct BranchCtl {
    kind: PredCtrlKind,
    prediction: Prediction,
    /// Wrong direction or wrong/unknown indirect target: resolve at execute.
    full_mispredict: bool,
    fetch_cycle: u64,
    resolved: bool,
}

#[derive(Clone, Debug)]
struct Fetched {
    r: Retired,
    ready_at: u64,
    br: Option<BranchCtl>,
}

#[derive(Clone, Debug)]
struct Slot {
    r: Retired,
    class: OpClass,
    /// Producer sequence numbers for each source operand.
    srcs: [Option<u64>; 2],
    issued: bool,
    completed: bool,
    complete_at: u64,
    br: Option<BranchCtl>,
}

const LINE_MASK: u64 = !63;

/// Runs `n_insts` instructions through the cycle-accurate core, starting
/// from the current architectural state of `cpu` and the current contents
/// of `hier`/`pred` (that is exactly what warm-up policies manipulate).
///
/// The bus clocks in `hier` are reset so the cluster starts at cycle zero;
/// cache and predictor *state* is taken as-is.
///
/// # Errors
///
/// Propagates [`ExecError::PcOutOfText`] from the functional simulator. A
/// clean `halt` inside the window simply ends the run early.
///
/// # Panics
///
/// Panics if the configuration is invalid, or on an internal scheduling
/// deadlock (a bug, not an input condition).
pub fn simulate_cluster(
    cfg: &CoreConfig,
    cpu: &mut Cpu,
    hier: &mut MemHierarchy,
    pred: &mut Predictor,
    n_insts: u64,
) -> Result<HotStats, ExecError> {
    simulate_cluster_hooked(cfg, cpu, hier, pred, n_insts, &mut NoHook)
}

/// [`simulate_cluster`] with a [`PredictHook`] for on-demand warm-up.
///
/// Generic (rather than `&mut dyn PredictHook`) so each hook type gets its
/// own monomorphized copy of the cluster loop: the plain-simulation
/// [`NoHook`] path compiles the hook call away entirely, and the RSR
/// reconstruction hook is a direct, inlinable call instead of a per-branch
/// virtual dispatch. `?Sized` keeps existing `&mut dyn PredictHook` callers
/// compiling unchanged.
///
/// # Errors
///
/// Propagates [`ExecError::PcOutOfText`] from the functional simulator.
///
/// # Panics
///
/// Panics if the configuration is invalid, or on an internal scheduling
/// deadlock (a bug, not an input condition).
pub fn simulate_cluster_hooked<H: PredictHook + ?Sized>(
    cfg: &CoreConfig,
    cpu: &mut Cpu,
    hier: &mut MemHierarchy,
    pred: &mut Predictor,
    n_insts: u64,
    hook: &mut H,
) -> Result<HotStats, ExecError> {
    if let Err(e) = cfg.validate() {
        panic!("invalid core config: {e}");
    }
    hier.reset_timing();

    let mut stats = HotStats::default();
    if n_insts == 0 {
        return Ok(stats);
    }

    let mut target = n_insts;
    let mut rob: VecDeque<Slot> = VecDeque::with_capacity(cfg.rob_entries);
    let mut head_seq: u64 = 0; // rel seq of rob.front() (valid when !rob.is_empty())
    let mut iq_used = 0usize;
    let mut lsq_used = 0usize;
    let mut spec_branches = 0usize;
    let mut unissued_stores: BTreeSet<u64> = BTreeSet::new();
    let mut last_writer: [Option<u64>; 64] = [None; 64];
    let mut fetch_buf: VecDeque<Fetched> = VecDeque::new();
    let fetch_buf_cap = cfg.fetch_width * 3;
    let mut pending: Option<Retired> = None;
    let mut fetch_stall_until: u64 = 0;
    let mut fetch_blocked_on: Option<u64> = None; // seq of unresolved mispredict
    let mut fetched: u64 = 0;
    let mut retired: u64 = 0;
    let mut cycle: u64 = 0;
    let deadlock_cap = n_insts.saturating_mul(10_000).saturating_add(1_000_000);

    let seq_base = cpu.icount();
    let rel = |seq: u64| seq - seq_base;

    // Is the producer of `seq` complete (or already retired)?
    let producer_done = |rob: &VecDeque<Slot>, head_seq: u64, seq: u64| -> bool {
        if rob.is_empty() || seq < head_seq {
            return true;
        }
        let idx = (seq - head_seq) as usize;
        idx >= rob.len() || rob[idx].completed
    };

    while retired < target {
        assert!(cycle < deadlock_cap, "timing core deadlock at cycle {cycle}");

        // Did any stage change machine state this cycle? Stall-dominated
        // clusters (memory-bound IPC far below 1) spend most cycles with
        // nothing in flight maturing; those cycles are detected below and
        // fast-forwarded in one jump, which changes simulation time but
        // not the cycle arithmetic (no access, prediction, or state
        // transition happens on an idle cycle).
        let mut progress = false;

        // ---- commit ---------------------------------------------------
        for _ in 0..cfg.retire_width {
            let Some(front) = rob.front() else { break };
            if !front.completed {
                break;
            }
            let Some(slot) = rob.pop_front() else { break };
            progress = true;
            head_seq = rel(slot.r.seq) + 1;
            if let Some(m) = slot.r.mem {
                lsq_used -= 1;
                if m.is_store {
                    // Write-through traffic happens at commit; a store
                    // buffer means retire does not wait for it.
                    hier.access(cycle, m.addr, HierAccess::Store);
                }
            }
            if let (Some(b), Some(br)) = (slot.r.branch, slot.br.as_ref()) {
                pred.commit(slot.r.pc, br.kind, &br.prediction, b.taken, b.target);
            }
            retired += 1;
            if retired == target {
                break;
            }
        }
        if retired >= target {
            break;
        }

        // ---- writeback / branch resolution -----------------------------
        #[allow(clippy::needless_range_loop)] // indices also feed producer_done lookups
        for idx in 0..rob.len() {
            if rob[idx].issued && !rob[idx].completed && rob[idx].complete_at <= cycle {
                rob[idx].completed = true;
                progress = true;
                let slot = &mut rob[idx];
                if let Some(br) = slot.br.as_mut() {
                    if !br.resolved {
                        br.resolved = true;
                        spec_branches -= 1;
                        if br.full_mispredict {
                            let actual = slot.r.branch.map(|b| b.taken);
                            let dir = match br.kind {
                                PredCtrlKind::CondBranch => actual,
                                _ => None,
                            };
                            pred.recover(&br.prediction.checkpoint, dir);
                            if fetch_blocked_on == Some(slot.r.seq) {
                                fetch_blocked_on = None;
                                let resume = (slot.complete_at + 1)
                                    .max(br.fetch_cycle + cfg.min_mispredict_penalty);
                                fetch_stall_until = fetch_stall_until.max(resume);
                            }
                        }
                    }
                }
            }
        }

        // ---- issue ------------------------------------------------------
        let mut issued_now = 0usize;
        let oldest_unissued_store = unissued_stores.first().copied();
        for idx in 0..rob.len() {
            if issued_now >= cfg.issue_width {
                break;
            }
            if rob[idx].issued {
                continue;
            }
            let ready = rob[idx].srcs.iter().flatten().all(|&s| {
                // A producer in this very cycle's writeback set counts;
                // back-to-back dependent issue is modeled by complete_at.
                producer_done(&rob, head_seq, rel(s))
            });
            if !ready {
                continue;
            }
            let seq = rob[idx].r.seq;
            if let Some(m) = rob[idx].r.mem {
                if !m.is_store {
                    // Loads wait until every older store address is known.
                    if oldest_unissued_store.is_some_and(|s| s < seq) {
                        continue;
                    }
                }
            }
            let slot = &mut rob[idx];
            slot.issued = true;
            progress = true;
            iq_used -= 1;
            issued_now += 1;
            slot.complete_at = match slot.r.mem {
                Some(m) if !m.is_store => {
                    let t = hier.access(cycle, m.addr, HierAccess::Load);
                    t.max(cycle + 2)
                }
                _ => cycle + cfg.latency(slot.class),
            };
            if slot.r.mem.is_some_and(|m| m.is_store) {
                unissued_stores.remove(&seq);
            }
        }

        // ---- dispatch ---------------------------------------------------
        for _ in 0..cfg.dispatch_width {
            let Some(front) = fetch_buf.front() else { break };
            if front.ready_at > cycle {
                break;
            }
            if rob.len() >= cfg.rob_entries || iq_used >= cfg.iq_entries {
                break;
            }
            let is_mem = front.r.mem.is_some();
            if is_mem && lsq_used >= cfg.lsq_entries {
                break;
            }
            let Some(f) = fetch_buf.pop_front() else { break };
            progress = true;
            let (src_regs, dest) = operands(&f.r);
            let srcs = [
                src_regs[0].and_then(|r| last_writer[r as usize]),
                src_regs[1].and_then(|r| last_writer[r as usize]),
            ];
            if let Some(d) = dest {
                last_writer[d as usize] = Some(f.r.seq);
            }
            if rob.is_empty() {
                head_seq = rel(f.r.seq);
            }
            iq_used += 1;
            if is_mem {
                lsq_used += 1;
                if matches!(&f.r.mem, Some(m) if m.is_store) {
                    unissued_stores.insert(f.r.seq);
                }
            }
            rob.push_back(Slot {
                class: f.r.inst.op.class(),
                srcs,
                issued: false,
                completed: false,
                complete_at: u64::MAX,
                br: f.br,
                r: f.r,
            });
        }

        // ---- fetch ------------------------------------------------------
        'fetch: {
            if fetch_blocked_on.is_some() || cycle < fetch_stall_until {
                break 'fetch;
            }
            if fetched >= target || fetch_buf.len() >= fetch_buf_cap {
                break 'fetch;
            }
            let mut group_line: Option<u64> = None;
            let mut group_ready: u64 = cycle + 1;
            for _ in 0..cfg.fetch_width {
                if fetched >= target || fetch_buf.len() >= fetch_buf_cap {
                    break;
                }
                let r = match pending.take() {
                    Some(r) => r,
                    None => match cpu.step() {
                        Ok(r) => r,
                        Err(ExecError::Halted) => {
                            target = fetched;
                            progress = true;
                            break;
                        }
                        Err(e) => return Err(e),
                    },
                };
                let line = r.pc & LINE_MASK;
                match group_line {
                    None => {
                        group_line = Some(line);
                        let t = hier.access(cycle, r.pc, HierAccess::Fetch);
                        progress = true;
                        group_ready = group_ready.max(t);
                        // A miss occupies the fetch engine until the line
                        // arrives.
                        fetch_stall_until = fetch_stall_until.max(t);
                    }
                    Some(l) if l != line => {
                        // Group ends at the cache-line boundary.
                        pending = Some(r);
                        break;
                    }
                    _ => {}
                }

                let br = if let Some(b) = r.branch {
                    if spec_branches >= cfg.max_spec_branches {
                        pending = Some(r);
                        break;
                    }
                    let kind = to_pred_kind(b.kind);
                    hook.before_predict(pred, r.pc, kind);
                    let prediction = pred.predict(r.pc, kind);
                    let correct = pred.is_correct(&prediction, b.taken, b.target, kind);
                    let direction_ok = match kind {
                        PredCtrlKind::CondBranch => prediction.taken == b.taken,
                        _ => true,
                    };
                    let indirect = matches!(
                        kind,
                        PredCtrlKind::IndirectCall
                            | PredCtrlKind::IndirectJump
                            | PredCtrlKind::Return
                    );
                    let full_mispredict = !direction_ok || (indirect && !correct);
                    let decode_redirect = direction_ok && !correct && !indirect;
                    spec_branches += 1;
                    let ctl = BranchCtl {
                        kind,
                        prediction,
                        full_mispredict,
                        fetch_cycle: cycle,
                        resolved: false,
                    };
                    let seq = r.seq;
                    let taken = b.taken;
                    fetch_buf.push_back(Fetched {
                        r,
                        ready_at: group_ready + cfg.front_end_delay,
                        br: Some(ctl),
                    });
                    fetched += 1;
                    if full_mispredict {
                        stats.full_mispredicts += 1;
                        fetch_blocked_on = Some(seq);
                    } else if decode_redirect {
                        stats.decode_redirects += 1;
                        fetch_stall_until = fetch_stall_until.max(group_ready + 2);
                    }
                    if full_mispredict || decode_redirect || taken {
                        break;
                    }
                    continue;
                } else {
                    None
                };
                fetch_buf.push_back(Fetched { r, ready_at: group_ready + cfg.front_end_delay, br });
                fetched += 1;
            }
        }

        // ---- idle-cycle fast-forward ------------------------------------
        // With no stage active this cycle, the machine state is frozen
        // until some already-scheduled time arrives: an in-flight op's
        // completion, the front of the fetch buffer maturing, or the
        // fetch stall lifting. Every intermediate cycle would repeat this
        // one exactly, so jump straight to the earliest such time. All of
        // those times are in the future here (anything due now would have
        // acted above and set `progress`), hence the `t > cycle` guard
        // only protects against events gated on another stage's progress.
        if progress {
            cycle += 1;
        } else {
            let mut next = u64::MAX;
            for s in rob.iter() {
                if s.issued && !s.completed && s.complete_at > cycle {
                    next = next.min(s.complete_at);
                }
            }
            if let Some(f) = fetch_buf.front() {
                if f.ready_at > cycle {
                    next = next.min(f.ready_at);
                }
            }
            if fetch_blocked_on.is_none()
                && fetched < target
                && fetch_buf.len() < fetch_buf_cap
                && fetch_stall_until > cycle
            {
                next = next.min(fetch_stall_until);
            }
            cycle = if next == u64::MAX { cycle + 1 } else { next.max(cycle + 1) };
        }
    }

    stats.cycles = cycle.max(1);
    stats.instructions = retired;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_branch::PredictorConfig;
    use rsr_cache::HierarchyConfig;
    use rsr_isa::{Asm, Reg};

    fn machine() -> (MemHierarchy, Predictor) {
        (MemHierarchy::new(HierarchyConfig::paper()), Predictor::new(PredictorConfig::paper()))
    }

    fn run_insts(build: impl FnOnce(&mut Asm), n: u64) -> HotStats {
        let mut a = Asm::new();
        build(&mut a);
        let p = a.finish().unwrap();
        let mut cpu = Cpu::new(&p).unwrap();
        let (mut hier, mut pred) = machine();
        simulate_cluster(&CoreConfig::paper(), &mut cpu, &mut hier, &mut pred, n).unwrap()
    }

    /// An infinite stream of independent ALU ops should approach the retire
    /// width (IPC ≈ 4) once the pipeline fills.
    #[test]
    fn independent_alu_ipc_near_retire_width() {
        let stats = run_insts(
            |a| {
                let top = a.bind_new("top");
                for i in 0..16 {
                    a.addi(Reg(10 + (i % 8)), Reg::ZERO, i as i32);
                }
                a.j(top);
            },
            20_000,
        );
        let ipc = stats.ipc();
        assert!(ipc > 2.5, "ipc {ipc}");
        assert!(ipc <= 4.01, "ipc {ipc} cannot beat retire width");
    }

    /// A serial dependency chain of 12-cycle divides is latency-bound:
    /// IPC ≈ 1/12.
    #[test]
    fn dependent_divides_are_latency_bound() {
        let stats = run_insts(
            |a| {
                a.li(Reg::T0, 1_000_000);
                a.li(Reg::T1, 1);
                let top = a.bind_new("top");
                for _ in 0..8 {
                    a.div(Reg::T0, Reg::T0, Reg::T1);
                }
                a.j(top);
            },
            5_000,
        );
        let ipc = stats.ipc();
        assert!(ipc < 0.25, "ipc {ipc} should be divide-latency bound");
    }

    /// The same program must report identical cycle counts on repeat runs
    /// (the model is deterministic).
    #[test]
    fn deterministic_cycles() {
        let s1 = run_insts(
            |a| {
                let top = a.bind_new("top");
                a.addi(Reg::T0, Reg::T0, 1);
                a.j(top);
            },
            10_000,
        );
        let s2 = run_insts(
            |a| {
                let top = a.bind_new("top");
                a.addi(Reg::T0, Reg::T0, 1);
                a.j(top);
            },
            10_000,
        );
        assert_eq!(s1, s2);
    }

    /// Alternating (data-dependent, pattern-free) branches mispredict and
    /// cost cycles versus the same loop without them.
    #[test]
    fn mispredicts_cost_cycles() {
        // Hard-to-predict: branch on xorshift bit.
        let noisy = run_insts(
            |a| {
                a.li(Reg::S0, 0x123456789);
                let top = a.bind_new("top");
                a.slli(Reg::T0, Reg::S0, 13);
                a.xor(Reg::S0, Reg::S0, Reg::T0);
                a.srli(Reg::T0, Reg::S0, 7);
                a.xor(Reg::S0, Reg::S0, Reg::T0);
                a.slli(Reg::T0, Reg::S0, 17);
                a.xor(Reg::S0, Reg::S0, Reg::T0);
                a.andi(Reg::T1, Reg::S0, 1);
                let skip = a.new_label("skip");
                a.beq(Reg::T1, Reg::ZERO, skip);
                a.addi(Reg::T2, Reg::T2, 1);
                a.bind(skip).unwrap();
                a.j(top);
            },
            20_000,
        );
        assert!(noisy.full_mispredicts > 500, "mispredicts {}", noisy.full_mispredicts);
        assert!(noisy.ipc() < 2.0, "ipc {}", noisy.ipc());
    }

    /// Cold-cache pointer chasing is memory-latency bound: IPC far below 1.
    #[test]
    fn cache_misses_throttle_ipc() {
        let stats = run_insts(
            |a| {
                // Walk a large stride so every load misses.
                a.li(Reg::S1, 0x1000_0000);
                a.li(Reg::S2, 0);
                let top = a.bind_new("top");
                a.ld(Reg::T0, 0, Reg::S1);
                a.add(Reg::S2, Reg::S2, Reg::T0);
                // Serialize the next address on the loaded value (always 0).
                a.add(Reg::S1, Reg::S1, Reg::T0);
                a.addi(Reg::S1, Reg::S1, 4096);
                a.j(top);
            },
            3_000,
        );
        assert!(stats.ipc() < 0.5, "ipc {}", stats.ipc());
    }

    /// Store-to-load ordering: a load must wait for older stores' address
    /// generation, so a dependent store→load chain is slower than pure
    /// loads.
    #[test]
    fn loads_wait_for_older_stores() {
        let with_stores = run_insts(
            |a| {
                let buf = a.data_zeros(64);
                a.la(Reg::S1, buf);
                let top = a.bind_new("top");
                for _ in 0..4 {
                    a.sd(Reg::T0, 0, Reg::S1);
                    a.ld(Reg::T1, 0, Reg::S1);
                }
                a.j(top);
            },
            8_000,
        );
        // The store traffic and ordering constraint must cost relative to
        // an equivalent loop of independent ALU ops.
        let alu_only = run_insts(
            |a| {
                let top = a.bind_new("top");
                for i in 0..8 {
                    a.addi(Reg(10 + i), Reg::ZERO, i as i32);
                }
                a.j(top);
            },
            8_000,
        );
        assert!(
            with_stores.cycles > alu_only.cycles,
            "stores {} vs alu {}",
            with_stores.cycles,
            alu_only.cycles
        );
    }

    /// Decode redirects (direct branch, BTB miss) are counted and cheaper
    /// than full mispredicts.
    #[test]
    fn decode_redirects_are_tracked() {
        let stats = run_insts(
            |a| {
                // An always-taken loop branch: direction trains quickly but
                // the first encounters miss the BTB.
                a.li(Reg::T0, 0);
                a.li(Reg::T1, 1_000_000);
                let top = a.bind_new("top");
                for _ in 0..4 {
                    a.addi(Reg::T0, Reg::T0, 1);
                }
                a.blt(Reg::T0, Reg::T1, top);
            },
            20_000,
        );
        assert!(
            stats.decode_redirects > 0 || stats.full_mispredicts > 0,
            "cold BTB must cost something"
        );
        // Once trained, the loop runs well.
        assert!(stats.ipc() > 1.0, "ipc {}", stats.ipc());
    }

    /// The ROB bounds in-flight work: a window full of long-latency ops
    /// stalls dispatch rather than deadlocking or overrunning.
    #[test]
    fn rob_pressure_does_not_deadlock() {
        let stats = run_insts(
            |a| {
                a.li(Reg::T1, 3);
                let top = a.bind_new("top");
                // 80 independent divides: more than the 64-entry ROB.
                for i in 0..80 {
                    a.div(Reg(10 + (i % 16)), Reg::T1, Reg::T1);
                }
                a.j(top);
            },
            10_000,
        );
        assert_eq!(stats.instructions, 10_000);
        // Throughput limited by issue width over divide latency, not zero.
        assert!(stats.ipc() > 0.1 && stats.ipc() <= 4.0);
    }

    /// A `halt` inside the window ends the run early but cleanly.
    #[test]
    fn halt_ends_run_early() {
        let stats = run_insts(
            |a| {
                a.addi(Reg::T0, Reg::ZERO, 1);
                a.addi(Reg::T1, Reg::ZERO, 2);
                a.halt();
            },
            1_000,
        );
        assert_eq!(stats.instructions, 3);
        assert!(stats.cycles >= 3);
    }

    /// Requesting zero instructions is a no-op.
    #[test]
    fn zero_window() {
        let stats = run_insts(
            |a| {
                a.halt();
            },
            0,
        );
        assert_eq!(stats.instructions, 0);
    }

    /// Warmed caches make the same cluster faster — the whole premise of
    /// warm-up methods.
    #[test]
    fn warm_caches_speed_up_cluster() {
        use rsr_workloads::{Benchmark, WorkloadParams};
        let params = WorkloadParams { scale: 0.05, ..Default::default() };
        let p = Benchmark::Mcf.build(&params);

        // Cold run.
        let mut cpu = Cpu::new(&p).unwrap();
        cpu.run(50_000).unwrap();
        let (mut hier, mut pred) = machine();
        let cold =
            simulate_cluster(&CoreConfig::paper(), &mut cpu, &mut hier, &mut pred, 5_000).unwrap();

        // Warmed run: functionally warm the caches over the same skip.
        let mut cpu = Cpu::new(&p).unwrap();
        let (mut hier, mut pred) = machine();
        for _ in 0..50_000 {
            let r = cpu.step().unwrap();
            if let Some(m) = r.mem {
                hier.warm_access(
                    m.addr,
                    if m.is_store { HierAccess::Store } else { HierAccess::Load },
                );
            }
            hier.warm_access(r.pc, HierAccess::Fetch);
            if let Some(b) = r.branch {
                pred.warm_update(r.pc, to_pred_kind(b.kind), b.taken, b.target);
            }
        }
        let warm =
            simulate_cluster(&CoreConfig::paper(), &mut cpu, &mut hier, &mut pred, 5_000).unwrap();

        assert!(warm.cycles < cold.cycles, "warm {} vs cold {} cycles", warm.cycles, cold.cycles);
    }
}
