//! `rsr-serve` — a supervised simulation job daemon with a crash-safe,
//! content-addressed result cache.
//!
//! Sampled runs are deterministic functions of their spec ([`RunSpec`'s
//! content hash][rsr_core::RunSpec::content_hash] excludes every
//! parallelism knob), which makes a shared result service natural:
//! submit a [`JobSpec`], get back either a fresh [`SampleOutcome`
//! summary][protocol::Response::Done] or a bit-identical cache hit.
//!
//! The crate splits into:
//!
//! - [`protocol`] — the line-delimited JSON wire format ([`Request`] /
//!   [`Response`] / [`JobSpec`]) with a canonical encoding used for both
//!   journaling and content addressing;
//! - [`cache`] — the on-disk entry format (`RSRC` magic, FNV-checksummed
//!   payload, temp-file-plus-rename writes, quarantine on corruption);
//! - [`daemon`] — the TCP service itself: worker pool, supervision with
//!   retries and deadlines, admission control, dedupe, and a journaled
//!   queue that survives a kill mid-flight;
//! - [`client`] — the one-call blocking client used by `rsr submit`.
//!
//! The hand-rolled [`json`] module exists because the build is offline:
//! no serde, no tokio, `std` only.

pub mod cache;
pub mod client;
pub mod daemon;
pub mod json;
pub mod protocol;

pub use crate::cache::{
    decode_entry, encode_entry, CacheError, CachedOutcome, Lookup, ResultCache, CACHE_MAGIC,
    CACHE_VERSION,
};
pub use crate::client::request;
pub use crate::daemon::{
    backoff_delay, job_cold_spec, job_content_hash, job_detail_spec, job_machine, Daemon,
    ServeConfig,
};
pub use crate::protocol::{
    DaemonStats, FailClass, JobSpec, ProtoError, Request, Response, ResultSource,
};
