//! A minimal JSON value, parser, and writer for the line-delimited wire
//! protocol and the queue journal.
//!
//! The build environment is offline, so there is no serde; the service
//! needs only a small, strict subset of JSON. Two properties matter more
//! than generality:
//!
//! * **Exact numeric round-trips.** [`Json::Num`] stores the raw numeric
//!   token, so a 64-bit seed or an FNV hash survives parse → write
//!   unchanged, and floats written with Rust's shortest-round-trip
//!   formatter ([`num_f64`]) re-parse to the same bits.
//! * **Deterministic output.** Objects keep insertion order and the writer
//!   adds no whitespace, so a value built with a fixed key order has one
//!   canonical encoding — which is what the content-addressed cache and
//!   the in-flight dedupe key on.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys are a parse error).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for absent keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if this is an unsigned integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if this is any numeric token.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// A `u64` as a JSON number (the token is the decimal digits, so the full
/// 64-bit range round-trips).
pub fn num_u64(v: u64) -> Json {
    Json::Num(v.to_string())
}

/// A finite `f64` as a JSON number, via Rust's shortest-round-trip
/// formatter — re-parsing yields bit-identical `f64`s. Non-finite values
/// (which no deterministic outcome produces) degrade to `0`.
pub fn num_f64(v: f64) -> Json {
    if v.is_finite() {
        // `{:?}` emits the shortest decimal that re-parses to the same
        // bits, and every form it produces is a valid JSON number token.
        Json::Num(format!("{v:?}"))
    } else {
        Json::Num("0".to_string())
    }
}

/// Serializes `v` with no whitespace (one canonical line per value).
pub fn to_string(v: &Json) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(raw) => out.push_str(raw),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// A human-readable description of the first syntax violation: bad
/// escapes, malformed numbers, duplicate object keys, nesting deeper than
/// an internal bound, or trailing garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, token: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(format!("expected `{token}` at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.expect("null").map(|()| Json::Null),
            Some(b't') => self.expect("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.expect("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte {b:#04x} at offset {}", self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(format!("expected object key at offset {}", self.pos));
            }
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate object key `{key}`"));
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(format!("expected `:` at offset {}", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(format!("raw control byte at offset {}", self.pos)),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn escape(&mut self) -> Result<char, String> {
        let b = self.peek().ok_or("unterminated escape")?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b't' => '\t',
            b'r' => '\r',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // A high surrogate must be followed by `\u` + low half.
                    if self.peek() != Some(b'\\') {
                        return Err("unpaired surrogate".to_string());
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err("unpaired surrogate".to_string());
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err("unpaired surrogate".to_string());
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                char::from_u32(code).ok_or("invalid \\u escape")?
            }
            _ => return Err(format!("bad escape `\\{}`", b as char)),
        })
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "truncated \\u escape".to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(format!("malformed number at offset {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(format!("malformed number at offset {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(format!("malformed number at offset {start}"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "malformed number".to_string())?;
        Ok(Json::Num(raw.to_string()))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_the_writer() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "18446744073709551615",
            "1.5",
            "1e300",
            r#""hello""#,
            r#""esc \"\\ \n""#,
            "[]",
            "[1,2,[3]]",
            r#"{"a":1,"b":{"c":[true,null]}}"#,
        ];
        for case in cases {
            let v = parse(case).unwrap();
            let written = to_string(&v);
            assert_eq!(parse(&written).unwrap(), v, "case `{case}`");
        }
    }

    #[test]
    fn u64_and_f64_tokens_are_exact() {
        let v = num_u64(u64::MAX);
        assert_eq!(parse(&to_string(&v)).unwrap().as_u64(), Some(u64::MAX));
        for f in [0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-7] {
            let v = num_f64(f);
            let back = parse(&to_string(&v)).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "float {f} must round-trip bit-exactly");
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "nul",
            "truefalse",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 unpaired\"",
            "01x",
            "-",
            "1.",
            "1e",
            "{\"a\" 1}",
            "[1] trailing",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&deep).is_err(), "over-deep nesting must not parse");
    }

    #[test]
    fn object_order_is_preserved_and_canonical() {
        let v = Json::Obj(vec![
            ("z".to_string(), num_u64(1)),
            ("a".to_string(), Json::Str("x".to_string())),
        ]);
        assert_eq!(to_string(&v), r#"{"z":1,"a":"x"}"#);
    }
}
