//! The line-delimited job wire protocol: one JSON value per line, typed
//! both ways.
//!
//! A [`JobSpec`] is the service's unit of work — the portable subset of a
//! [`rsr_core::RunSpec`] a client can name over the wire (benchmark,
//! regimen, seed, policy, and the deterministic supervision knobs).
//! [`JobSpec::canonical_json`] fixes the key order and omits unset
//! optionals, so the same job always serializes to the same bytes; the
//! queue journal persists exactly that form and the daemon derives the
//! content address from the materialized `RunSpec` it describes.
//!
//! Every response is typed ([`Response`]): a client can distinguish a
//! served-from-cache result, a shed request ([`Response::Overloaded`]),
//! and a failed job with its failure class ([`FailClass`]) without string
//! matching. Parsing is strict — unknown fields, missing fields, and
//! out-of-range values are [`ProtoError`]s, which is what the adversarial
//! round-trip suite leans on.

use std::fmt;

use rsr_core::{Pct, WarmupPolicy};
use rsr_workloads::Benchmark;

use crate::json::{self, num_f64, num_u64, Json};

/// A wire-protocol violation: syntax, unknown/missing fields, or
/// out-of-range values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err<T>(message: impl Into<String>) -> Result<T, ProtoError> {
    Err(ProtoError(message.into()))
}

/// One simulation job, as named over the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Workload to run.
    pub bench: Benchmark,
    /// Number of sampled clusters.
    pub n_clusters: usize,
    /// Instructions per cluster.
    pub cluster_len: u64,
    /// Run length in dynamic instructions.
    pub total_insts: u64,
    /// Schedule seed.
    pub seed: u64,
    /// Warm-up policy.
    pub policy: WarmupPolicy,
    /// L1D size override in KiB (paper geometry when absent).
    pub l1d_kb: Option<u64>,
    /// Global-history-register width override (paper geometry when absent).
    pub ghr_bits: Option<u32>,
    /// Canonical shard span override in instructions.
    pub shard_span: Option<u64>,
    /// Per-skip-region log budget in bytes.
    pub log_budget: Option<u64>,
    /// Per-job wall-clock deadline in milliseconds, anchored when a worker
    /// picks the job up (so a stalled worker consumes it).
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A job running `bench` under its default regimen and run length with
    /// the paper's headline policy — the starting point `rsr submit`
    /// refines from flags.
    pub fn for_bench(bench: Benchmark) -> JobSpec {
        let regimen = bench.default_regimen();
        JobSpec {
            bench,
            n_clusters: regimen.n_clusters,
            cluster_len: regimen.cluster_len,
            total_insts: bench.default_instructions(),
            seed: 42,
            policy: WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
            l1d_kb: None,
            ghr_bits: None,
            shard_span: None,
            log_budget: None,
            deadline_ms: None,
        }
    }

    /// The job as a JSON value with a fixed key order; unset optionals are
    /// omitted rather than encoded as `null`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("bench".to_string(), Json::Str(self.bench.name().to_string())),
            ("clusters".to_string(), num_u64(self.n_clusters as u64)),
            ("len".to_string(), num_u64(self.cluster_len)),
            ("n".to_string(), num_u64(self.total_insts)),
            ("seed".to_string(), num_u64(self.seed)),
            ("policy".to_string(), policy_to_json(self.policy)),
        ];
        if let Some(v) = self.l1d_kb {
            fields.push(("l1d_kb".to_string(), num_u64(v)));
        }
        if let Some(v) = self.ghr_bits {
            fields.push(("ghr_bits".to_string(), num_u64(u64::from(v))));
        }
        if let Some(v) = self.shard_span {
            fields.push(("shard_span".to_string(), num_u64(v)));
        }
        if let Some(v) = self.log_budget {
            fields.push(("log_budget".to_string(), num_u64(v)));
        }
        if let Some(v) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), num_u64(v)));
        }
        Json::Obj(fields)
    }

    /// The canonical single-line encoding (fixed key order, no
    /// whitespace): equal jobs encode to equal bytes.
    pub fn canonical_json(&self) -> String {
        json::to_string(&self.to_json())
    }

    /// Parses a job object strictly: every field validated, unknown fields
    /// rejected.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] for missing/unknown fields, an unknown benchmark or
    /// policy, zero regimen dimensions, or out-of-range percentages.
    pub fn from_json(v: &Json) -> Result<JobSpec, ProtoError> {
        let Json::Obj(fields) = v else {
            return err("job must be an object");
        };
        const KNOWN: [&str; 11] = [
            "bench",
            "clusters",
            "len",
            "n",
            "seed",
            "policy",
            "l1d_kb",
            "ghr_bits",
            "shard_span",
            "log_budget",
            "deadline_ms",
        ];
        for (k, _) in fields {
            if !KNOWN.contains(&k.as_str()) {
                return err(format!("unknown job field `{k}`"));
            }
        }
        let bench_name = v
            .get("bench")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError("job needs a string `bench`".to_string()))?;
        let bench = Benchmark::from_name(bench_name)
            .ok_or_else(|| ProtoError(format!("unknown benchmark `{bench_name}`")))?;
        let n_clusters = require_u64(v, "clusters")?;
        let cluster_len = require_u64(v, "len")?;
        let total_insts = require_u64(v, "n")?;
        let seed = require_u64(v, "seed")?;
        if n_clusters == 0 || cluster_len == 0 {
            return err("regimen dimensions must be nonzero");
        }
        if total_insts == 0 {
            return err("`n` must be nonzero");
        }
        let policy_json =
            v.get("policy").ok_or_else(|| ProtoError("job needs a `policy`".to_string()))?;
        let policy = policy_from_json(policy_json)?;
        let ghr_bits = match optional_u64(v, "ghr_bits")? {
            Some(g) => Some(
                u32::try_from(g).map_err(|_| ProtoError("`ghr_bits` out of range".to_string()))?,
            ),
            None => None,
        };
        Ok(JobSpec {
            bench,
            n_clusters: usize::try_from(n_clusters)
                .map_err(|_| ProtoError("`clusters` out of range".to_string()))?,
            cluster_len,
            total_insts,
            seed,
            policy,
            l1d_kb: optional_u64(v, "l1d_kb")?,
            ghr_bits,
            shard_span: optional_u64(v, "shard_span")?,
            log_budget: optional_u64(v, "log_budget")?,
            deadline_ms: optional_u64(v, "deadline_ms")?,
        })
    }
}

fn require_u64(v: &Json, key: &str) -> Result<u64, ProtoError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtoError(format!("job needs an unsigned integer `{key}`")))
}

fn optional_u64(v: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match v.get(key) {
        None => Ok(None),
        Some(field) => field
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtoError(format!("`{key}` must be an unsigned integer"))),
    }
}

/// A warm-up policy as a structured JSON object (fixed key order).
pub fn policy_to_json(policy: WarmupPolicy) -> Json {
    let kind = |name: &str| ("kind".to_string(), Json::Str(name.to_string()));
    match policy {
        WarmupPolicy::None => Json::Obj(vec![kind("none")]),
        WarmupPolicy::FixedPeriod { pct } => Json::Obj(vec![
            kind("fixed_period"),
            ("pct".to_string(), num_u64(u64::from(pct.value()))),
        ]),
        WarmupPolicy::Smarts { cache, bp } => Json::Obj(vec![
            kind("smarts"),
            ("cache".to_string(), Json::Bool(cache)),
            ("bp".to_string(), Json::Bool(bp)),
        ]),
        WarmupPolicy::Reverse { cache, bp, pct } => Json::Obj(vec![
            kind("reverse"),
            ("cache".to_string(), Json::Bool(cache)),
            ("bp".to_string(), Json::Bool(bp)),
            ("pct".to_string(), num_u64(u64::from(pct.value()))),
        ]),
        WarmupPolicy::Mrrl { coverage } => Json::Obj(vec![
            kind("mrrl"),
            ("coverage".to_string(), num_u64(u64::from(coverage.value()))),
        ]),
        WarmupPolicy::Blrl { coverage } => Json::Obj(vec![
            kind("blrl"),
            ("coverage".to_string(), num_u64(u64::from(coverage.value()))),
        ]),
    }
}

/// Parses a structured policy object (see [`policy_to_json`]).
///
/// # Errors
///
/// [`ProtoError`] for unknown kinds, missing fields, or percentages
/// outside `1..=100` (checked here so the daemon never feeds a
/// panicking value into [`Pct::new`]).
pub fn policy_from_json(v: &Json) -> Result<WarmupPolicy, ProtoError> {
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError("policy needs a string `kind`".to_string()))?;
    let pct_field = |key: &str| -> Result<Pct, ProtoError> {
        let raw = v
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| ProtoError(format!("policy needs an unsigned integer `{key}`")))?;
        if !(1..=100).contains(&raw) {
            return err(format!("policy `{key}` must be in 1..=100"));
        }
        Ok(Pct::new(raw as u8))
    };
    let bool_field = |key: &str| -> Result<bool, ProtoError> {
        v.get(key)
            .and_then(Json::as_bool)
            .ok_or_else(|| ProtoError(format!("policy needs a boolean `{key}`")))
    };
    match kind {
        "none" => Ok(WarmupPolicy::None),
        "fixed_period" => Ok(WarmupPolicy::FixedPeriod { pct: pct_field("pct")? }),
        "smarts" => Ok(WarmupPolicy::Smarts { cache: bool_field("cache")?, bp: bool_field("bp")? }),
        "reverse" => Ok(WarmupPolicy::Reverse {
            cache: bool_field("cache")?,
            bp: bool_field("bp")?,
            pct: pct_field("pct")?,
        }),
        "mrrl" => Ok(WarmupPolicy::Mrrl { coverage: pct_field("coverage")? }),
        "blrl" => Ok(WarmupPolicy::Blrl { coverage: pct_field("coverage")? }),
        other => err(format!("unknown policy kind `{other}`")),
    }
}

/// A client request: one JSON line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a job. With `wait` the connection blocks until the job
    /// settles; without it the daemon acknowledges admission immediately.
    Submit {
        /// The job to run.
        job: JobSpec,
        /// Block for the result?
        wait: bool,
    },
    /// Snapshot the daemon's counters.
    Stats,
    /// Drain: stop admitting, finish every in-flight job, persist, stop.
    /// (The offline build has no signal-handling dependency, so graceful
    /// shutdown is a protocol verb rather than SIGTERM — see DESIGN.md
    /// §13.)
    Drain,
}

impl Request {
    /// Serializes to one canonical JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let v = match self {
            Request::Submit { job, wait } => Json::Obj(vec![
                ("op".to_string(), Json::Str("submit".to_string())),
                ("wait".to_string(), Json::Bool(*wait)),
                ("job".to_string(), job.to_json()),
            ]),
            Request::Stats => Json::Obj(vec![("op".to_string(), Json::Str("stats".to_string()))]),
            Request::Drain => Json::Obj(vec![("op".to_string(), Json::Str("drain".to_string()))]),
        };
        json::to_string(&v)
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on syntax errors, unknown ops, or invalid jobs.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let v = json::parse(line).map_err(ProtoError)?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError("request needs a string `op`".to_string()))?;
        match op {
            "submit" => {
                let wait = match v.get("wait") {
                    None => true,
                    Some(w) => w
                        .as_bool()
                        .ok_or_else(|| ProtoError("`wait` must be a boolean".to_string()))?,
                };
                let job =
                    v.get("job").ok_or_else(|| ProtoError("submit needs a `job`".to_string()))?;
                Ok(Request::Submit { job: JobSpec::from_json(job)?, wait })
            }
            "stats" => Ok(Request::Stats),
            "drain" => Ok(Request::Drain),
            other => err(format!("unknown op `{other}`")),
        }
    }
}

/// Where a completed result came from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ResultSource {
    /// Simulated for this request.
    Computed,
    /// Served from the content-addressed cache without simulating.
    CacheHit,
    /// The cached entry failed verification, was quarantined, and the job
    /// was recomputed.
    Recomputed,
}

impl ResultSource {
    /// The lowercase wire token (also what `rsr submit` prints).
    pub fn as_str(self) -> &'static str {
        match self {
            ResultSource::Computed => "computed",
            ResultSource::CacheHit => "cache_hit",
            ResultSource::Recomputed => "recomputed",
        }
    }

    fn parse(s: &str) -> Result<ResultSource, ProtoError> {
        match s {
            "computed" => Ok(ResultSource::Computed),
            "cache_hit" => Ok(ResultSource::CacheHit),
            "recomputed" => Ok(ResultSource::Recomputed),
            other => err(format!("unknown result source `{other}`")),
        }
    }
}

/// Why a job failed, as a closed class set (clients branch on this, not
/// on message text).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FailClass {
    /// The per-job deadline expired ([`rsr_core::SimError::DeadlineExceeded`]).
    Deadline,
    /// The supervised worker panicked and the retry budget is spent.
    Panic,
    /// A shard-infrastructure fault outlived the retry budget.
    Shard,
    /// The job described an invalid spec ([`rsr_core::SimError::Spec`]).
    Spec,
    /// Any other deterministic simulation error (load/execution faults).
    Sim,
}

impl FailClass {
    /// The lowercase wire token (also what `rsr submit` prints).
    pub fn as_str(self) -> &'static str {
        match self {
            FailClass::Deadline => "deadline",
            FailClass::Panic => "panic",
            FailClass::Shard => "shard",
            FailClass::Spec => "spec",
            FailClass::Sim => "sim",
        }
    }

    fn parse(s: &str) -> Result<FailClass, ProtoError> {
        match s {
            "deadline" => Ok(FailClass::Deadline),
            "panic" => Ok(FailClass::Panic),
            "shard" => Ok(FailClass::Shard),
            "spec" => Ok(FailClass::Spec),
            "sim" => Ok(FailClass::Sim),
            other => err(format!("unknown failure class `{other}`")),
        }
    }
}

/// The daemon's counters, as reported by [`Request::Stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Jobs admitted (including deduped joins and cache hits).
    pub submitted: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs that settled with a typed failure.
    pub failed: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Corrupt or truncated cache entries quarantined.
    pub quarantined: u64,
    /// Requests that joined an identical in-flight job.
    pub deduped: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Supervised retry attempts across all jobs.
    pub retries: u64,
    /// Jobs recovered from the journal at startup.
    pub resumed: u64,
    /// Jobs currently queued.
    pub pending: u64,
    /// Jobs currently executing.
    pub running: u64,
}

const STAT_KEYS: [&str; 11] = [
    "submitted",
    "completed",
    "failed",
    "cache_hits",
    "quarantined",
    "deduped",
    "shed",
    "retries",
    "resumed",
    "pending",
    "running",
];

impl DaemonStats {
    /// The counters as `(name, value)` rows in wire-key order, for
    /// human-readable listings (`rsr submit --stats`).
    pub fn rows(&self) -> [(&'static str, u64); 11] {
        let mut rows = [("", 0); 11];
        for (row, (key, value)) in rows.iter_mut().zip(STAT_KEYS.iter().zip(self.fields())) {
            *row = (key, value);
        }
        rows
    }

    fn fields(&self) -> [u64; 11] {
        [
            self.submitted,
            self.completed,
            self.failed,
            self.cache_hits,
            self.quarantined,
            self.deduped,
            self.shed,
            self.retries,
            self.resumed,
            self.pending,
            self.running,
        ]
    }

    fn to_json(self) -> Vec<(String, Json)> {
        STAT_KEYS.iter().zip(self.fields()).map(|(k, v)| ((*k).to_string(), num_u64(v))).collect()
    }

    fn from_json(v: &Json) -> Result<DaemonStats, ProtoError> {
        let mut s = DaemonStats::default();
        let slots: [&mut u64; 11] = [
            &mut s.submitted,
            &mut s.completed,
            &mut s.failed,
            &mut s.cache_hits,
            &mut s.quarantined,
            &mut s.deduped,
            &mut s.shed,
            &mut s.retries,
            &mut s.resumed,
            &mut s.pending,
            &mut s.running,
        ];
        for (key, slot) in STAT_KEYS.iter().zip(slots) {
            *slot = v
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtoError(format!("stats needs `{key}`")))?;
        }
        Ok(s)
    }
}

/// A daemon response: one JSON line, discriminated by `"status"`.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The job settled successfully.
    Done {
        /// The job's content address.
        hash: u64,
        /// Where the result came from.
        source: ResultSource,
        /// Supervised attempts it took (0 for cache hits).
        attempts: u32,
        /// The deterministic IPC estimate.
        est_ipc: f64,
        /// The ±95 % confidence bound on the estimate.
        ipc_err: f64,
        /// Sampled clusters in the estimate.
        clusters: u64,
        /// Clusters degraded to the stale-state fallback.
        clusters_degraded: u64,
        /// Skip-log records the run appended.
        log_records: u64,
    },
    /// Admission acknowledged (a `wait:false` submit).
    Queued {
        /// The job's content address.
        hash: u64,
    },
    /// Admission control shed this request; retry later.
    Overloaded {
        /// Jobs in flight (queued + running) at rejection time.
        inflight: u64,
        /// The configured admission limit.
        limit: u64,
    },
    /// The job settled with a typed failure.
    Failed {
        /// The job's content address.
        hash: u64,
        /// The failure class.
        class: FailClass,
        /// Human-readable detail.
        message: String,
        /// Supervised attempts made.
        attempts: u32,
    },
    /// The daemon finished draining.
    Draining {
        /// Jobs that settled over the daemon's lifetime.
        settled: u64,
    },
    /// Counter snapshot.
    Stats(DaemonStats),
    /// The request itself was unserviceable (parse error, draining
    /// daemon, internal I/O failure).
    Error {
        /// What went wrong.
        message: String,
    },
}

fn hash_json(hash: u64) -> Json {
    Json::Str(format!("{hash:016x}"))
}

fn parse_hash(v: &Json, key: &str) -> Result<u64, ProtoError> {
    let s = v
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError(format!("response needs a string `{key}`")))?;
    u64::from_str_radix(s, 16).map_err(|_| ProtoError(format!("`{key}` is not a hex hash")))
}

impl Response {
    /// Serializes to one canonical JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let status = |name: &str| ("status".to_string(), Json::Str(name.to_string()));
        let v = match self {
            Response::Done {
                hash,
                source,
                attempts,
                est_ipc,
                ipc_err,
                clusters,
                clusters_degraded,
                log_records,
            } => Json::Obj(vec![
                status("done"),
                ("hash".to_string(), hash_json(*hash)),
                ("source".to_string(), Json::Str(source.as_str().to_string())),
                ("attempts".to_string(), num_u64(u64::from(*attempts))),
                ("est_ipc".to_string(), num_f64(*est_ipc)),
                ("ipc_err".to_string(), num_f64(*ipc_err)),
                ("clusters".to_string(), num_u64(*clusters)),
                ("clusters_degraded".to_string(), num_u64(*clusters_degraded)),
                ("log_records".to_string(), num_u64(*log_records)),
            ]),
            Response::Queued { hash } => {
                Json::Obj(vec![status("queued"), ("hash".to_string(), hash_json(*hash))])
            }
            Response::Overloaded { inflight, limit } => Json::Obj(vec![
                status("overloaded"),
                ("inflight".to_string(), num_u64(*inflight)),
                ("limit".to_string(), num_u64(*limit)),
            ]),
            Response::Failed { hash, class, message, attempts } => Json::Obj(vec![
                status("failed"),
                ("hash".to_string(), hash_json(*hash)),
                ("class".to_string(), Json::Str(class.as_str().to_string())),
                ("message".to_string(), Json::Str(message.clone())),
                ("attempts".to_string(), num_u64(u64::from(*attempts))),
            ]),
            Response::Draining { settled } => {
                Json::Obj(vec![status("draining"), ("settled".to_string(), num_u64(*settled))])
            }
            Response::Stats(stats) => {
                let mut fields = vec![status("stats")];
                fields.extend(stats.to_json());
                Json::Obj(fields)
            }
            Response::Error { message } => Json::Obj(vec![
                status("error"),
                ("message".to_string(), Json::Str(message.clone())),
            ]),
        };
        json::to_string(&v)
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on syntax errors, unknown statuses, or missing
    /// fields.
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let v = json::parse(line).map_err(ProtoError)?;
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError("response needs a string `status`".to_string()))?;
        let u64_field = |key: &str| -> Result<u64, ProtoError> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtoError(format!("response needs an unsigned `{key}`")))
        };
        let f64_field = |key: &str| -> Result<f64, ProtoError> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| ProtoError(format!("response needs a number `{key}`")))
        };
        let str_field = |key: &str| -> Result<String, ProtoError> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ProtoError(format!("response needs a string `{key}`")))
        };
        let attempts_field = || -> Result<u32, ProtoError> {
            u32::try_from(u64_field("attempts")?)
                .map_err(|_| ProtoError("`attempts` out of range".to_string()))
        };
        match status {
            "done" => Ok(Response::Done {
                hash: parse_hash(&v, "hash")?,
                source: ResultSource::parse(&str_field("source")?)?,
                attempts: attempts_field()?,
                est_ipc: f64_field("est_ipc")?,
                ipc_err: f64_field("ipc_err")?,
                clusters: u64_field("clusters")?,
                clusters_degraded: u64_field("clusters_degraded")?,
                log_records: u64_field("log_records")?,
            }),
            "queued" => Ok(Response::Queued { hash: parse_hash(&v, "hash")? }),
            "overloaded" => Ok(Response::Overloaded {
                inflight: u64_field("inflight")?,
                limit: u64_field("limit")?,
            }),
            "failed" => Ok(Response::Failed {
                hash: parse_hash(&v, "hash")?,
                class: FailClass::parse(&str_field("class")?)?,
                message: str_field("message")?,
                attempts: attempts_field()?,
            }),
            "draining" => Ok(Response::Draining { settled: u64_field("settled")? }),
            "stats" => Ok(Response::Stats(DaemonStats::from_json(&v)?)),
            "error" => Ok(Response::Error { message: str_field("message")? }),
            other => err(format!("unknown response status `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_canonical_encoding_is_stable_and_round_trips() {
        let job = JobSpec::for_bench(Benchmark::Mcf);
        let line = job.canonical_json();
        assert_eq!(line, job.canonical_json(), "canonical form is deterministic");
        let back = JobSpec::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, job);
        // Optionals appear when set, and round-trip too.
        let full = JobSpec {
            l1d_kb: Some(16),
            ghr_bits: Some(8),
            shard_span: Some(100_000),
            log_budget: Some(1 << 20),
            deadline_ms: Some(2_000),
            ..job
        };
        let back = JobSpec::from_json(&json::parse(&full.canonical_json()).unwrap()).unwrap();
        assert_eq!(back, full);
    }

    #[test]
    fn strict_job_parsing_rejects_bad_shapes() {
        let good = JobSpec::for_bench(Benchmark::Art).canonical_json();
        for (mutation, why) in [
            (good.replace("\"art\"", "\"sphinx\""), "unknown benchmark"),
            (good.replace("\"clusters\":", "\"klusters\":"), "unknown field"),
            (good.replace("\"seed\":42", "\"seed\":-1"), "negative seed"),
            (good.replace("\"pct\":20", "\"pct\":0"), "pct below range"),
            (good.replace("\"pct\":20", "\"pct\":101"), "pct above range"),
            (good.replace("\"reverse\"", "\"sideways\""), "unknown policy"),
        ] {
            let parsed = json::parse(&mutation).expect(why);
            assert!(JobSpec::from_json(&parsed).is_err(), "{why}: `{mutation}`");
        }
    }

    #[test]
    fn requests_and_responses_round_trip() {
        let reqs = [
            Request::Submit { job: JobSpec::for_bench(Benchmark::Gcc), wait: true },
            Request::Submit { job: JobSpec::for_bench(Benchmark::Vpr), wait: false },
            Request::Stats,
            Request::Drain,
        ];
        for r in reqs {
            assert_eq!(Request::parse(&r.encode()).unwrap(), r);
        }
        let resps = [
            Response::Done {
                hash: 0xdead_beef_1234_5678,
                source: ResultSource::CacheHit,
                attempts: 0,
                est_ipc: 1.0 / 3.0,
                ipc_err: 0.012_345,
                clusters: 64,
                clusters_degraded: 1,
                log_records: 123_456,
            },
            Response::Queued { hash: 7 },
            Response::Overloaded { inflight: 5, limit: 4 },
            Response::Failed {
                hash: u64::MAX,
                class: FailClass::Deadline,
                message: "deadline exceeded: 3 of 9 shards".to_string(),
                attempts: 2,
            },
            Response::Draining { settled: 11 },
            Response::Stats(DaemonStats { submitted: 9, cache_hits: 3, ..Default::default() }),
            Response::Error { message: "bad \"quote\"".to_string() },
        ];
        for r in resps {
            let line = r.encode();
            assert_eq!(Response::parse(&line).unwrap(), r, "line `{line}`");
        }
    }

    #[test]
    fn float_fields_survive_the_wire_bit_exactly() {
        let est_ipc = 0.123_456_789_012_345_67;
        let ipc_err = f64::MIN_POSITIVE;
        let resp = Response::Done {
            hash: 1,
            source: ResultSource::Computed,
            attempts: 1,
            est_ipc,
            ipc_err,
            clusters: 2,
            clusters_degraded: 0,
            log_records: 3,
        };
        match Response::parse(&resp.encode()).unwrap() {
            Response::Done { est_ipc: e, ipc_err: b, .. } => {
                assert_eq!(e.to_bits(), est_ipc.to_bits());
                assert_eq!(b.to_bits(), ipc_err.to_bits());
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}
