//! The job daemon: a localhost TCP service executing [`JobSpec`]s under
//! per-job supervision, backed by the content-addressed [`ResultCache`].
//!
//! ## Scheduling
//!
//! A fixed worker pool (default: up to four, bounded by the host's cores)
//! pulls jobs from a FIFO queue. Each job runs with
//! `threads = cores / workers` and the intra-run pipeline and
//! reconstruction knobs pinned to 1, so the PR 5 core-budget arithmetic
//! holds at the service level too: `workers × threads × depth × recon ≤
//! cores` — concurrent jobs never oversubscribe the host. Identical
//! in-flight requests (equal content hashes) are deduped: later
//! submitters join the first job's waiter list instead of queuing a
//! duplicate.
//!
//! ## Supervision
//!
//! Every attempt runs under `catch_unwind`; a panic or a shard-
//! infrastructure fault is retried up to [`ServeConfig::max_job_retries`]
//! times with deterministic seed-derived exponential backoff
//! ([`backoff_delay`]). Per-job deadlines are anchored when a worker
//! picks the job up — a stalled worker ([`FaultKind::StallJob`]) consumes
//! the budget — and enforced inside the run by the existing
//! [`rsr_core::SimError::DeadlineExceeded`] machinery. Admission control
//! sheds load with a typed [`Response::Overloaded`] once queued + running
//! jobs reach `workers + queue_depth`.
//!
//! ## Durability
//!
//! Admissions append `+ <hash> <canonical job>` to an fsynced journal in
//! the cache directory and settlements append `- <hash>`; on startup the
//! pending set (admitted minus settled, tolerating a torn final line) is
//! re-queued and the journal is compacted. A kill mid-queue therefore
//! loses no admitted work, and a clean drain leaves an empty journal.
//!
//! ## Shutdown
//!
//! The offline build has no signal-handling dependency (no `libc`), so
//! graceful shutdown is a protocol verb: [`Request::Drain`] stops
//! admission, lets every in-flight job settle, compacts the journal, and
//! stops the daemon; `rsr serve` then exits 0. See DESIGN.md §13.

use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use rsr_core::{
    ColdSpec, DetailSpec, FaultInjector, FaultPlan, MachineConfig, RunSpec, SamplingRegimen,
    SimError,
};
use rsr_isa::Program;
use rsr_workloads::WorkloadParams;

use crate::cache::{self, CachedOutcome, Lookup, ResultCache};
use crate::protocol::{DaemonStats, FailClass, JobSpec, Request, Response, ResultSource};

/// Daemon configuration. Start with [`ServeConfig::new`] and adjust
/// fields; every knob has a serviceable default.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (default `127.0.0.1:0` — an ephemeral localhost
    /// port, reported by [`Daemon::local_addr`]).
    pub addr: String,
    /// Directory for the result cache and the queue journal.
    pub cache_dir: PathBuf,
    /// Worker pool size (0 = auto: the host's cores, capped at 4).
    pub workers: usize,
    /// Jobs that may wait beyond the running set; admission control sheds
    /// load once queued + running reaches `workers + queue_depth`.
    pub queue_depth: usize,
    /// Supervised retry budget per job (panics and shard faults only).
    pub max_job_retries: u32,
    /// Base of the exponential backoff between retry attempts.
    pub backoff_base: Duration,
    /// Seed for the deterministic backoff jitter.
    pub backoff_seed: u64,
    /// Deadline applied to jobs that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Workload build scale (programs are built once per benchmark and
    /// shared across jobs).
    pub scale: f64,
    /// Service-level fault plan ([`rsr_core::FaultKind::SERVICE`] kinds,
    /// keyed by job admission order). Empty = fault-free.
    pub fault_plan: FaultPlan,
}

impl ServeConfig {
    /// A default configuration caching into `cache_dir`.
    pub fn new(cache_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: cache_dir.into(),
            workers: 0,
            queue_depth: 16,
            max_job_retries: 1,
            backoff_base: Duration::from_millis(5),
            backoff_seed: 0x5eed,
            default_deadline: None,
            scale: 1.0,
            fault_plan: FaultPlan::new(),
        }
    }
}

/// The machine a job simulates: paper geometry with the job's overrides.
pub fn job_machine(job: &JobSpec) -> MachineConfig {
    let mut machine = MachineConfig::paper();
    if let Some(kb) = job.l1d_kb {
        machine.hier.l1d.size_bytes = kb * 1024;
    }
    if let Some(ghr) = job.ghr_bits {
        machine.pred.ghr_bits = ghr;
    }
    machine
}

/// The cold (workload) half a job describes, over an already-built
/// program. Parallelism is left at defaults; the daemon applies its core
/// budget, and standalone verifiers may apply any — outcomes are
/// bit-identical either way.
pub fn job_cold_spec<'a>(job: &JobSpec, program: &'a Program) -> ColdSpec<'a> {
    let mut cold = ColdSpec::new(program)
        .regimen(SamplingRegimen::new(job.n_clusters, job.cluster_len))
        .total_insts(job.total_insts)
        .seed(job.seed);
    if let Some(span) = job.shard_span {
        cold = cold.shard_span(span);
    }
    if let Some(budget) = job.log_budget {
        cold = cold.log_budget_bytes(budget as usize);
    }
    cold
}

/// The detailed (microarchitecture) half a job describes.
pub fn job_detail_spec(job: &JobSpec) -> DetailSpec {
    DetailSpec::new(&job_machine(job)).policy(job.policy)
}

/// The job's content address: [`RunSpec::content_hash`] of the spec it
/// describes (parallelism-independent by construction).
///
/// # Errors
///
/// [`SimError::Spec`] for degenerate jobs (e.g. a regimen denser than
/// the sampled-run limit).
pub fn job_content_hash(job: &JobSpec, program: &Program) -> Result<u64, SimError> {
    RunSpec::from_parts(job_cold_spec(job, program), job_detail_spec(job)).content_hash()
}

/// Deterministic exponential backoff with seed-derived jitter: attempt
/// `a` (1-based) sleeps `base × 2^(a-1)`, capped at 64×, scaled by a
/// 75–125 % factor drawn from splitmix64 over `(seed, job hash, a)` so
/// identical retry storms never synchronize yet replay exactly.
pub fn backoff_delay(base: Duration, seed: u64, job_hash: u64, attempt: u32) -> Duration {
    let factor = 1u32 << (attempt.saturating_sub(1)).min(6);
    let nominal = base.saturating_mul(factor);
    let mut state = seed ^ job_hash ^ u64::from(attempt);
    let jitter_pct = 75 + splitmix64(&mut state) % 51; // 75..=125
    nominal.saturating_mul(jitter_pct as u32) / 100
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Mode {
    Running,
    Draining,
    Stopped,
}

struct QueuedJob {
    hash: u64,
    spec: JobSpec,
    /// Admission order — the fault plan's group key.
    index: usize,
    /// The admit-time lookup quarantined a corrupt entry; report the
    /// result as [`ResultSource::Recomputed`].
    recompute: bool,
}

struct Journal {
    dir: PathBuf,
    file: File,
}

impl Journal {
    fn admit(&mut self, hash: u64, canonical: &str) -> io::Result<()> {
        self.file.write_all(format!("+ {hash:016x} {canonical}\n").as_bytes())?;
        self.file.sync_data()
    }

    fn settle(&mut self, hash: u64) -> io::Result<()> {
        self.file.write_all(format!("- {hash:016x}\n").as_bytes())?;
        self.file.sync_data()
    }

    /// Rewrites the journal to exactly `pending` and reopens the handle
    /// (the rewrite replaces the inode the old handle pointed at).
    fn compact(&mut self, pending: &[(u64, String)]) -> io::Result<()> {
        let mut contents = String::new();
        for (hash, canonical) in pending {
            contents.push_str(&format!("+ {hash:016x} {canonical}\n"));
        }
        cache::rewrite_journal(&self.dir, &contents)?;
        self.file = cache::open_journal_file(&self.dir)?;
        Ok(())
    }
}

/// Replays the journal: admissions minus settlements, in admission
/// order. Malformed lines (torn tails from a crash mid-append) are
/// skipped, not fatal.
fn recover_pending(dir: &Path) -> io::Result<Vec<(u64, String)>> {
    let text = cache::read_journal(dir)?;
    let mut order: Vec<u64> = Vec::new();
    let mut live: HashMap<u64, String> = HashMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("+ ") {
            let Some((hex, canonical)) = rest.split_once(' ') else { continue };
            let Ok(hash) = u64::from_str_radix(hex, 16) else { continue };
            if live.insert(hash, canonical.to_string()).is_none() {
                order.push(hash);
            }
        } else if let Some(hex) = line.strip_prefix("- ") {
            if let Ok(hash) = u64::from_str_radix(hex.trim(), 16) {
                live.remove(&hash);
            }
        }
    }
    Ok(order.into_iter().filter_map(|h| live.remove(&h).map(|c| (h, c))).collect())
}

struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    cache_hits: u64,
    quarantined: u64,
    deduped: u64,
    shed: u64,
    retries: u64,
    resumed: u64,
}

struct State {
    mode: Mode,
    queue: VecDeque<QueuedJob>,
    running: usize,
    /// Content hash → waiters, present while the job is queued or
    /// running. Membership is the dedupe set.
    inflight: HashMap<u64, Vec<Sender<Response>>>,
    /// Admission counter; each admitted job's fault-plan group index.
    admitted: usize,
    stats: Counters,
    journal: Journal,
}

struct Shared {
    cache: ResultCache,
    injector: FaultInjector,
    state: Mutex<State>,
    cv: Condvar,
    accept_done: AtomicBool,
    addr: SocketAddr,
    /// Live connection handlers, joined at shutdown so the process never
    /// exits between settling a request and writing its response. Clients
    /// are one-shot (close after each response), so the joins are brief.
    handlers: Mutex<Vec<JoinHandle<()>>>,
    programs: Mutex<HashMap<&'static str, Arc<Program>>>,
    scale: f64,
    per_job_threads: usize,
    admission_limit: usize,
    max_job_retries: u32,
    backoff_base: Duration,
    backoff_seed: u64,
    default_deadline: Option<Duration>,
}

impl Shared {
    /// Locks the state, surviving poisoning — a panicking connection
    /// handler must never wedge the whole daemon.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    fn program_for(&self, job: &JobSpec) -> Arc<Program> {
        let mut map = self.programs.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(p) = map.get(job.bench.name()) {
            return Arc::clone(p);
        }
        let params = WorkloadParams { scale: self.scale, ..WorkloadParams::default() };
        let program = Arc::new(job.bench.build(&params));
        map.insert(job.bench.name(), Arc::clone(&program));
        program
    }

    fn stop_accepting(&self) {
        self.accept_done.store(true, Ordering::SeqCst);
        // Unblock the acceptor's `accept()` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    fn snapshot(&self, st: &State) -> DaemonStats {
        DaemonStats {
            submitted: st.stats.submitted,
            completed: st.stats.completed,
            failed: st.stats.failed,
            cache_hits: st.stats.cache_hits,
            quarantined: st.stats.quarantined,
            deduped: st.stats.deduped,
            shed: st.stats.shed,
            retries: st.stats.retries,
            resumed: st.stats.resumed,
            pending: st.queue.len() as u64,
            running: st.running as u64,
        }
    }
}

/// A running job daemon. Dropping the handle does not stop it; use
/// [`Daemon::wait`] (block until a protocol drain), [`Daemon::drain`]
/// (drain in-process), or [`Daemon::abort`] (simulated crash).
pub struct Daemon {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Starts the daemon: opens the cache, recovers the journal's pending
    /// jobs, binds the listener, and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the cache directory, journal, or listener.
    pub fn start(cfg: ServeConfig) -> io::Result<Daemon> {
        let result_cache = ResultCache::open(&cfg.cache_dir)?;
        let pending = recover_pending(&cfg.cache_dir)?;
        let mut journal =
            Journal { dir: cfg.cache_dir.clone(), file: cache::open_journal_file(&cfg.cache_dir)? };
        journal.compact(&pending)?;

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let cores = thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
        let workers = if cfg.workers == 0 { cores.min(4) } else { cfg.workers.max(1) };
        let per_job_threads = (cores / workers).max(1);

        let mut state = State {
            mode: Mode::Running,
            queue: VecDeque::new(),
            running: 0,
            inflight: HashMap::new(),
            admitted: 0,
            stats: Counters {
                submitted: 0,
                completed: 0,
                failed: 0,
                cache_hits: 0,
                quarantined: 0,
                deduped: 0,
                shed: 0,
                retries: 0,
                resumed: 0,
            },
            journal,
        };
        for (hash, canonical) in pending {
            let Ok(parsed) = crate::json::parse(&canonical) else {
                let _ = state.journal.settle(hash);
                continue;
            };
            let Ok(spec) = JobSpec::from_json(&parsed) else {
                let _ = state.journal.settle(hash);
                continue;
            };
            let index = state.admitted;
            state.admitted += 1;
            state.stats.resumed += 1;
            state.inflight.insert(hash, Vec::new());
            state.queue.push_back(QueuedJob { hash, spec, index, recompute: false });
        }

        let shared = Arc::new(Shared {
            cache: result_cache,
            injector: FaultInjector::new(&cfg.fault_plan),
            state: Mutex::new(state),
            cv: Condvar::new(),
            accept_done: AtomicBool::new(false),
            addr,
            handlers: Mutex::new(Vec::new()),
            programs: Mutex::new(HashMap::new()),
            scale: cfg.scale,
            per_job_threads,
            admission_limit: workers + cfg.queue_depth,
            max_job_retries: cfg.max_job_retries,
            backoff_base: cfg.backoff_base,
            backoff_seed: cfg.backoff_seed,
            default_deadline: cfg.default_deadline,
        });

        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || acceptor_loop(&shared, &listener))
        };
        Ok(Daemon { shared, acceptor: Some(acceptor), workers: worker_handles })
    }

    /// The bound address (useful with the default ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The resolved worker pool size.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> DaemonStats {
        let st = self.shared.lock();
        self.shared.snapshot(&st)
    }

    /// Blocks until a [`Request::Drain`] stops the daemon, then joins all
    /// threads and returns the final counters.
    pub fn wait(mut self) -> DaemonStats {
        let stats = {
            let mut st = self.shared.lock();
            while st.mode != Mode::Stopped {
                st = self.shared.wait(st);
            }
            self.shared.snapshot(&st)
        };
        self.join_threads();
        stats
    }

    /// Drains in-process (exactly what a [`Request::Drain`] does) and
    /// returns the final counters.
    pub fn drain(self) -> DaemonStats {
        drain_and_stop(&self.shared);
        self.wait()
    }

    /// Stops *without* draining — the simulated crash: running jobs
    /// finish, queued jobs stay pending in the journal for the next
    /// start. Test harness for kill-and-restart recovery.
    pub fn abort(mut self) {
        {
            let mut st = self.shared.lock();
            st.mode = Mode::Stopped;
            // Drop every waiter's channel: their handlers answer "stopped
            // before the job settled" instead of blocking the join below.
            st.inflight.clear();
        }
        self.shared.cv.notify_all();
        self.shared.stop_accepting();
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Handlers last: with the acceptor gone the set is final, and every
        // pending response gets onto the wire before the daemon returns.
        let handlers = std::mem::take(
            &mut *self.shared.handlers.lock().unwrap_or_else(PoisonError::into_inner),
        );
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

/// Stops admission, waits for every in-flight job to settle, compacts
/// the journal, and stops the daemon. Returns the lifetime settled
/// count. Idempotent under concurrent callers.
fn drain_and_stop(shared: &Shared) -> u64 {
    let mut st = shared.lock();
    if st.mode == Mode::Running {
        st.mode = Mode::Draining;
        shared.cv.notify_all();
    }
    while !(st.queue.is_empty() && st.running == 0) {
        st = shared.wait(st);
    }
    if st.mode != Mode::Stopped {
        st.mode = Mode::Stopped;
        // Every admitted job settled, so the journal compacts to empty.
        let _ = st.journal.compact(&[]);
        shared.cv.notify_all();
    }
    let settled = st.stats.completed + st.stats.failed;
    drop(st);
    shared.stop_accepting();
    settled
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for conn in listener.incoming() {
        if shared.accept_done.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(stream) = conn {
            let cloned = Arc::clone(shared);
            let handle = thread::spawn(move || handle_connection(&cloned, stream));
            shared.handlers.lock().unwrap_or_else(PoisonError::into_inner).push(handle);
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut writer = stream;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let mut out = handle_request(shared, &line).encode();
        out.push('\n');
        if writer.write_all(out.as_bytes()).and_then(|()| writer.flush()).is_err() {
            break;
        }
    }
}

fn handle_request(shared: &Arc<Shared>, line: &str) -> Response {
    match Request::parse(line) {
        Err(e) => Response::Error { message: e.to_string() },
        Ok(Request::Stats) => {
            let st = shared.lock();
            Response::Stats(shared.snapshot(&st))
        }
        Ok(Request::Drain) => Response::Draining { settled: drain_and_stop(shared) },
        Ok(Request::Submit { job, wait }) => handle_submit(shared, job, wait),
    }
}

fn done_response(
    hash: u64,
    source: ResultSource,
    attempts: u32,
    cached: &CachedOutcome,
) -> Response {
    Response::Done {
        hash,
        source,
        attempts,
        est_ipc: cached.est_ipc(),
        ipc_err: cached.ipc_error_bound_95(),
        clusters: cached.cluster_cpis.len() as u64,
        clusters_degraded: cached.clusters_degraded,
        log_records: cached.log_records,
    }
}

fn handle_submit(shared: &Arc<Shared>, job: JobSpec, wait: bool) -> Response {
    let program = shared.program_for(&job);
    let hash = match job_content_hash(&job, &program) {
        Ok(h) => h,
        // A degenerate job fails typed before touching the queue.
        Err(e) => {
            return Response::Failed {
                hash: 0,
                class: fail_class(&e),
                message: e.to_string(),
                attempts: 0,
            }
        }
    };
    // Probe the cache outside the lock; reads dominate in campaigns.
    let recompute = match shared.cache.lookup(hash) {
        Ok(Lookup::Hit(cached)) => {
            let mut st = shared.lock();
            if st.mode != Mode::Running {
                return Response::Error { message: "daemon is draining".to_string() };
            }
            st.stats.submitted += 1;
            st.stats.cache_hits += 1;
            return done_response(hash, ResultSource::CacheHit, 0, &cached);
        }
        Ok(Lookup::Miss) => false,
        Ok(Lookup::Quarantined) => true,
        Err(e) => return Response::Error { message: e.to_string() },
    };

    let rx: Receiver<Response> = {
        let mut st = shared.lock();
        if st.mode != Mode::Running {
            return Response::Error { message: "daemon is draining".to_string() };
        }
        st.stats.submitted += 1;
        if recompute {
            st.stats.quarantined += 1;
        }
        if st.inflight.contains_key(&hash) {
            st.stats.deduped += 1;
            if !wait {
                return Response::Queued { hash };
            }
            let (tx, rx) = mpsc::channel();
            if let Some(waiters) = st.inflight.get_mut(&hash) {
                waiters.push(tx);
            }
            rx
        } else {
            let inflight_now = (st.queue.len() + st.running) as u64;
            let limit = shared.admission_limit as u64;
            if inflight_now >= limit {
                st.stats.shed += 1;
                return Response::Overloaded { inflight: inflight_now, limit };
            }
            if let Err(e) = st.journal.admit(hash, &job.canonical_json()) {
                return Response::Error { message: format!("journal write failed: {e}") };
            }
            let index = st.admitted;
            st.admitted += 1;
            let mut waiters = Vec::new();
            let rx = if wait {
                let (tx, rx) = mpsc::channel();
                waiters.push(tx);
                Some(rx)
            } else {
                None
            };
            st.inflight.insert(hash, waiters);
            st.queue.push_back(QueuedJob { hash, spec: job, index, recompute });
            shared.cv.notify_all();
            match rx {
                Some(rx) => rx,
                None => return Response::Queued { hash },
            }
        }
    };
    match rx.recv() {
        Ok(response) => response,
        Err(_) => Response::Error { message: "daemon stopped before the job settled".to_string() },
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut st = shared.lock();
            loop {
                if st.mode == Mode::Stopped {
                    return;
                }
                if let Some(job) = st.queue.pop_front() {
                    st.running += 1;
                    break job;
                }
                if st.mode == Mode::Draining {
                    return;
                }
                st = shared.wait(st);
            }
        };
        process_job(shared, job);
    }
}

fn fail_class(e: &SimError) -> FailClass {
    match e {
        SimError::DeadlineExceeded { .. } => FailClass::Deadline,
        SimError::ShardPanicked { .. } => FailClass::Panic,
        e if e.is_shard_fault() => FailClass::Shard,
        SimError::Spec(_) => FailClass::Spec,
        _ => FailClass::Sim,
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "worker panicked".to_string()
    }
}

fn run_attempt(
    shared: &Shared,
    job: &JobSpec,
    program: &Program,
    deadline: Option<Duration>,
) -> Result<rsr_core::SampleOutcome, SimError> {
    let mut cold = job_cold_spec(job, program);
    if let Some(d) = deadline {
        cold = cold.deadline(d);
    }
    // The service's core-budget arithmetic: each concurrent job gets
    // cores/workers shard threads and nothing else, so the pool as a
    // whole never oversubscribes the host.
    let detail =
        job_detail_spec(job).threads(shared.per_job_threads).pipeline_depth(1).recon_threads(1);
    RunSpec::from_parts(cold, detail).run()
}

fn process_job(shared: &Arc<Shared>, job: QueuedJob) {
    let started = Instant::now();
    if let Some(stall) = shared.injector.stall_delay(job.index) {
        thread::sleep(stall);
    }
    let deadline = job.spec.deadline_ms.map(Duration::from_millis).or(shared.default_deadline);
    let program = shared.program_for(&job.spec);

    let mut attempts: u32 = 0;
    let verdict: Result<CachedOutcome, (FailClass, String)> = loop {
        // The job deadline is anchored at pickup, so stalls and backoff
        // sleeps consume it; what remains bounds the attempt itself via
        // the engine's own deadline machinery.
        let remaining = match deadline {
            Some(d) => {
                let left = d.saturating_sub(started.elapsed());
                if left.is_zero() {
                    break Err((
                        FailClass::Deadline,
                        format!("job deadline of {} ms expired", d.as_millis()),
                    ));
                }
                Some(left)
            }
            None => None,
        };
        attempts += 1;
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            if let Some(message) = shared.injector.job_panic_message(job.index) {
                panic!("{message}");
            }
            run_attempt(shared, &job.spec, &program, remaining)
        }));
        let (retryable, class, message) = match attempt {
            Ok(Ok(outcome)) => break Ok(CachedOutcome::capture(&outcome)),
            Ok(Err(e)) => (e.is_shard_fault(), fail_class(&e), e.to_string()),
            Err(payload) => (true, FailClass::Panic, panic_text(payload)),
        };
        if retryable && attempts <= shared.max_job_retries {
            shared.lock().stats.retries += 1;
            thread::sleep(backoff_delay(
                shared.backoff_base,
                shared.backoff_seed,
                job.hash,
                attempts,
            ));
            continue;
        }
        break Err((class, message));
    };

    let response = match verdict {
        Ok(cached) => {
            let corrupt = shared.injector.corrupt_cache_entry(job.index);
            // A failed store is not a failed job: the result is in hand,
            // and the next request for this spec simply recomputes.
            let _ = shared.cache.store(job.hash, &cached, corrupt);
            let source =
                if job.recompute { ResultSource::Recomputed } else { ResultSource::Computed };
            done_response(job.hash, source, attempts, &cached)
        }
        Err((class, message)) => Response::Failed { hash: job.hash, class, message, attempts },
    };

    let waiters = {
        let mut st = shared.lock();
        st.running -= 1;
        match &response {
            Response::Done { .. } => st.stats.completed += 1,
            _ => st.stats.failed += 1,
        }
        // Settle in the journal even on failure: a deterministically
        // failing job must not be resurrected on every restart.
        let _ = st.journal.settle(job.hash);
        let waiters = st.inflight.remove(&job.hash).unwrap_or_default();
        shared.cv.notify_all();
        waiters
    };
    for tx in waiters {
        let _ = tx.send(response.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_workloads::Benchmark;

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered() {
        let base = Duration::from_millis(10);
        let a1 = backoff_delay(base, 1, 2, 1);
        assert_eq!(a1, backoff_delay(base, 1, 2, 1), "same inputs, same delay");
        for attempt in 1..=4u32 {
            let d = backoff_delay(base, 1, 2, attempt);
            let nominal = base * (1 << (attempt - 1));
            assert!(d >= nominal * 3 / 4 && d <= nominal * 5 / 4, "attempt {attempt}: {d:?}");
        }
        assert_ne!(
            backoff_delay(base, 1, 2, 1),
            backoff_delay(base, 1, 3, 1),
            "different jobs jitter differently"
        );
    }

    #[test]
    fn job_hash_matches_the_standalone_spec_hash() {
        let job = JobSpec {
            n_clusters: 4,
            cluster_len: 100,
            total_insts: 20_000,
            ..JobSpec::for_bench(Benchmark::Mcf)
        };
        let program = job.bench.build(&WorkloadParams { scale: 0.05, ..Default::default() });
        let via_job = job_content_hash(&job, &program).unwrap();
        let standalone = RunSpec::new(&program, &job_machine(&job))
            .regimen(SamplingRegimen::new(4, 100))
            .total_insts(20_000)
            .seed(42)
            .threads(7)
            .content_hash()
            .unwrap();
        assert_eq!(via_job, standalone, "wire job and standalone spec share a content address");
    }

    #[test]
    fn journal_recovery_survives_torn_lines() {
        let dir = std::env::temp_dir().join(format!("rsr-journal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let job = JobSpec::for_bench(Benchmark::Art);
        let canonical = job.canonical_json();
        let text = format!(
            "+ {:016x} {canonical}\n+ {:016x} {canonical}\n- {:016x}\n+ 00zz bad line\n+ 123",
            1u64, 2u64, 1u64
        );
        std::fs::write(dir.join(cache::JOURNAL_NAME), text).unwrap();
        let pending = recover_pending(&dir).unwrap();
        assert_eq!(pending.len(), 1, "one admitted job unsettled");
        assert_eq!(pending[0].0, 2);
        assert_eq!(pending[0].1, canonical);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
