//! The content-addressed result cache: `RunSpec::content_hash` →
//! serialized deterministic outcome, one file per entry.
//!
//! Layout of an entry (all integers little-endian, mirroring the v2 skip
//! log format's magic/version/checksum discipline):
//!
//! ```text
//! "RSRC" | version u16 | spec_hash u64 | payload_len u64 | payload | fnv64(payload)
//! ```
//!
//! The file ends exactly at the checksum — total length pins
//! `payload_len`, so *any* single-byte flip or truncation is caught
//! deterministically: damage to the payload or the checksum fails the FNV
//! compare, damage to `payload_len` fails the length compare, and damage
//! to magic/version/hash fails its own field check. A failed read is
//! never served; [`ResultCache::lookup`] quarantines the file (renamed
//! alongside, for post-mortems) and reports [`Lookup::Quarantined`] so
//! the daemon recomputes.
//!
//! Writes are crash-safe by construction: the entry is assembled in
//! memory, written to a temp file in the same directory, synced, and
//! renamed over the final name. A crash before the rename leaves at most
//! a stale temp file; a crash after leaves a complete entry. There is no
//! in-between state that parses.
//!
//! Only the *deterministic* fields of a [`SampleOutcome`] are cached
//! ([`CachedOutcome`]): per-cluster IPC/CPI vectors and the counters that
//! are bit-identical at every thread count. Wall-clock times, per-phase
//! busy times, reconstruction timings, and retry counts are operational
//! telemetry of one particular execution and are deliberately not part of
//! the cached value.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use rsr_core::{Pct, ReconStats, SampleOutcome, WarmupPolicy};
use rsr_stats::{ClusterSample, Z_95};

/// Magic bytes opening every cache entry.
pub const CACHE_MAGIC: [u8; 4] = *b"RSRC";
/// Current entry format version.
pub const CACHE_VERSION: u16 = 1;

const HEADER_LEN: usize = 4 + 2 + 8 + 8;
const TRAILER_LEN: usize = 8;
/// An adversarial `payload_len` can't lie (total file length pins it),
/// but a decoded cluster count inside a checksummed payload still bounds
/// allocation defensively.
const MAX_CLUSTERS: u64 = 1 << 24;

/// Why a cache operation failed.
#[derive(Debug)]
pub enum CacheError {
    /// The filesystem failed.
    Io(io::Error),
    /// The entry's bytes failed verification (magic, version, hash,
    /// length, checksum, or payload shape).
    Corrupt(String),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache I/O failed: {e}"),
            CacheError::Corrupt(why) => write!(f, "cache entry corrupt: {why}"),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Io(e) => Some(e),
            CacheError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for CacheError {
    fn from(e: io::Error) -> Self {
        CacheError::Io(e)
    }
}

fn corrupt<T>(why: impl Into<String>) -> Result<T, CacheError> {
    Err(CacheError::Corrupt(why.into()))
}

/// The deterministic slice of a [`SampleOutcome`] — everything that is
/// bit-identical across thread counts, pipeline depths, and
/// reconstruction worker counts, and nothing that isn't.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedOutcome {
    /// The warm-up policy that produced the outcome.
    pub policy: WarmupPolicy,
    /// Per-cluster IPCs, in schedule order.
    pub cluster_ipcs: Vec<f64>,
    /// Per-cluster CPIs (the estimation domain), in schedule order.
    pub cluster_cpis: Vec<f64>,
    /// Hot (cycle-accurate) instructions simulated.
    pub hot_insts: u64,
    /// Instructions skipped functionally.
    pub skipped_insts: u64,
    /// Peak bytes held by a skip-region log.
    pub log_bytes_peak: u64,
    /// Total records appended to skip logs.
    pub log_records: u64,
    /// Functional warm updates applied.
    pub warm_updates: u64,
    /// Aggregated reconstruction counters.
    pub recon: ReconStats,
    /// Clusters degraded to the stale-state fallback.
    pub clusters_degraded: u64,
}

impl CachedOutcome {
    /// Captures the deterministic fields of `outcome`.
    pub fn capture(outcome: &SampleOutcome) -> CachedOutcome {
        CachedOutcome {
            policy: outcome.policy,
            cluster_ipcs: outcome.clusters.values().to_vec(),
            cluster_cpis: outcome.cpi_clusters.values().to_vec(),
            hot_insts: outcome.hot_insts,
            skipped_insts: outcome.skipped_insts,
            log_bytes_peak: outcome.log_bytes_peak as u64,
            log_records: outcome.log_records,
            warm_updates: outcome.warm_updates,
            recon: outcome.recon,
            clusters_degraded: outcome.clusters_degraded,
        }
    }

    /// Is this cached value bit-identical to `outcome`'s deterministic
    /// fields? Floats are compared by bit pattern, not numerically.
    pub fn matches(&self, outcome: &SampleOutcome) -> bool {
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        self.policy == outcome.policy
            && bits(&self.cluster_ipcs) == bits(outcome.clusters.values())
            && bits(&self.cluster_cpis) == bits(outcome.cpi_clusters.values())
            && self.hot_insts == outcome.hot_insts
            && self.skipped_insts == outcome.skipped_insts
            && self.log_bytes_peak == outcome.log_bytes_peak as u64
            && self.log_records == outcome.log_records
            && self.warm_updates == outcome.warm_updates
            && self.recon == outcome.recon
            && self.clusters_degraded == outcome.clusters_degraded
    }

    /// The IPC estimate, recomputed from the cached per-cluster CPIs
    /// exactly as [`SampleOutcome::est_ipc`] computes it.
    pub fn est_ipc(&self) -> f64 {
        let cpi = self.cpi_sample().mean();
        if cpi == 0.0 {
            0.0
        } else {
            1.0 / cpi
        }
    }

    /// The ±95 % bound on the IPC estimate, recomputed like
    /// [`SampleOutcome::ipc_error_bound_95`].
    pub fn ipc_error_bound_95(&self) -> f64 {
        let sample = self.cpi_sample();
        let mean = sample.mean();
        if mean == 0.0 {
            return 0.0;
        }
        Z_95 * sample.std_error() / (mean * mean)
    }

    fn cpi_sample(&self) -> ClusterSample {
        let mut s = ClusterSample::new();
        for &cpi in &self.cluster_cpis {
            s.push(cpi);
        }
        s
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_policy(&mut out, self.policy);
        out.extend_from_slice(&(self.cluster_ipcs.len() as u64).to_le_bytes());
        for &v in &self.cluster_ipcs {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.cluster_cpis.len() as u64).to_le_bytes());
        for &v in &self.cluster_cpis {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for v in [
            self.hot_insts,
            self.skipped_insts,
            self.log_bytes_peak,
            self.log_records,
            self.warm_updates,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let r = &self.recon;
        for v in [
            r.mem_scanned,
            r.cache_inserted,
            r.cache_marked,
            r.cache_ignored,
            r.branch_scanned,
            r.pht_exact,
            r.pht_guessed,
            r.pht_stale,
            r.btb_reconstructed,
            r.demand_scans,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.clusters_degraded.to_le_bytes());
        out
    }

    fn decode_payload(bytes: &[u8]) -> Result<CachedOutcome, CacheError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let policy = decode_policy(&mut cur)?;
        let cluster_ipcs = cur.f64_vec()?;
        let cluster_cpis = cur.f64_vec()?;
        let hot_insts = cur.u64()?;
        let skipped_insts = cur.u64()?;
        let log_bytes_peak = cur.u64()?;
        let log_records = cur.u64()?;
        let warm_updates = cur.u64()?;
        let recon = ReconStats {
            mem_scanned: cur.u64()?,
            cache_inserted: cur.u64()?,
            cache_marked: cur.u64()?,
            cache_ignored: cur.u64()?,
            branch_scanned: cur.u64()?,
            pht_exact: cur.u64()?,
            pht_guessed: cur.u64()?,
            pht_stale: cur.u64()?,
            btb_reconstructed: cur.u64()?,
            demand_scans: cur.u64()?,
        };
        let clusters_degraded = cur.u64()?;
        if cur.pos != bytes.len() {
            return corrupt("trailing payload bytes");
        }
        Ok(CachedOutcome {
            policy,
            cluster_ipcs,
            cluster_cpis,
            hot_insts,
            skipped_insts,
            log_bytes_peak,
            log_records,
            warm_updates,
            recon,
            clusters_degraded,
        })
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CacheError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => corrupt("truncated payload"),
        }
    }

    fn u8(&mut self) -> Result<u8, CacheError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CacheError> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn bool_byte(&mut self) -> Result<bool, CacheError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => corrupt(format!("invalid boolean byte {other:#04x}")),
        }
    }

    fn pct(&mut self) -> Result<Pct, CacheError> {
        let v = self.u8()?;
        if (1..=100).contains(&v) {
            Ok(Pct::new(v))
        } else {
            corrupt(format!("percentage {v} out of range"))
        }
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, CacheError> {
        let n = self.u64()?;
        if n > MAX_CLUSTERS {
            return corrupt(format!("implausible cluster count {n}"));
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(f64::from_bits(self.u64()?));
        }
        Ok(out)
    }
}

fn encode_policy(out: &mut Vec<u8>, policy: WarmupPolicy) {
    match policy {
        WarmupPolicy::None => out.push(0),
        WarmupPolicy::FixedPeriod { pct } => {
            out.push(1);
            out.push(pct.value());
        }
        WarmupPolicy::Smarts { cache, bp } => {
            out.push(2);
            out.push(cache as u8);
            out.push(bp as u8);
        }
        WarmupPolicy::Reverse { cache, bp, pct } => {
            out.push(3);
            out.push(cache as u8);
            out.push(bp as u8);
            out.push(pct.value());
        }
        WarmupPolicy::Mrrl { coverage } => {
            out.push(4);
            out.push(coverage.value());
        }
        WarmupPolicy::Blrl { coverage } => {
            out.push(5);
            out.push(coverage.value());
        }
    }
}

fn decode_policy(cur: &mut Cursor<'_>) -> Result<WarmupPolicy, CacheError> {
    match cur.u8()? {
        0 => Ok(WarmupPolicy::None),
        1 => Ok(WarmupPolicy::FixedPeriod { pct: cur.pct()? }),
        2 => Ok(WarmupPolicy::Smarts { cache: cur.bool_byte()?, bp: cur.bool_byte()? }),
        3 => Ok(WarmupPolicy::Reverse {
            cache: cur.bool_byte()?,
            bp: cur.bool_byte()?,
            pct: cur.pct()?,
        }),
        4 => Ok(WarmupPolicy::Mrrl { coverage: cur.pct()? }),
        5 => Ok(WarmupPolicy::Blrl { coverage: cur.pct()? }),
        other => corrupt(format!("unknown policy tag {other:#04x}")),
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serializes a full cache entry for `hash` (public so the adversarial
/// round-trip suite can mutate real entries).
pub fn encode_entry(hash: u64, outcome: &CachedOutcome) -> Vec<u8> {
    let payload = outcome.encode_payload();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&CACHE_MAGIC);
    out.extend_from_slice(&CACHE_VERSION.to_le_bytes());
    out.extend_from_slice(&hash.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv64(&payload).to_le_bytes());
    out
}

/// Verifies and decodes a full cache entry that should describe
/// `want_hash`.
///
/// # Errors
///
/// [`CacheError::Corrupt`] naming the first failed check: magic, version,
/// hash mismatch, length mismatch (covers truncation and appended
/// garbage), checksum mismatch, or a malformed payload.
pub fn decode_entry(bytes: &[u8], want_hash: u64) -> Result<CachedOutcome, CacheError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return corrupt("entry shorter than header + checksum");
    }
    if bytes[..4] != CACHE_MAGIC {
        return corrupt("bad magic");
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != CACHE_VERSION {
        return corrupt(format!("unsupported version {version}"));
    }
    let u64_at = |at: usize| {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&bytes[at..at + 8]);
        u64::from_le_bytes(buf)
    };
    let stored_hash = u64_at(6);
    if stored_hash != want_hash {
        return corrupt(format!("entry is for spec {stored_hash:016x}, wanted {want_hash:016x}"));
    }
    let payload_len = u64_at(14);
    let actual_payload = (bytes.len() - HEADER_LEN - TRAILER_LEN) as u64;
    if payload_len != actual_payload {
        return corrupt(format!(
            "payload length {payload_len} disagrees with file ({actual_payload})"
        ));
    }
    let payload = &bytes[HEADER_LEN..bytes.len() - TRAILER_LEN];
    let mut want_sum = [0u8; 8];
    want_sum.copy_from_slice(&bytes[bytes.len() - TRAILER_LEN..]);
    let want_sum = u64::from_le_bytes(want_sum);
    let got_sum = fnv64(payload);
    if got_sum != want_sum {
        return corrupt(format!("checksum {got_sum:016x}, expected {want_sum:016x}"));
    }
    CachedOutcome::decode_payload(payload)
}

/// What a cache lookup found.
#[derive(Debug)]
pub enum Lookup {
    /// A verified entry.
    Hit(CachedOutcome),
    /// No entry on disk.
    Miss,
    /// An entry existed but failed verification; it has been renamed to a
    /// `.quarantined` sibling and the caller should recompute.
    Quarantined,
}

/// The on-disk result cache: one `RSRC` entry file per content hash, plus
/// the daemon's queue journal alongside.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from creating the directory.
    pub fn open(dir: &Path) -> io::Result<ResultCache> {
        fs::create_dir_all(dir)?;
        Ok(ResultCache { dir: dir.to_path_buf() })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of `hash`'s entry file.
    pub fn entry_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.rsrc"))
    }

    /// Path a corrupt entry for `hash` is quarantined to.
    pub fn quarantine_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.rsrc.quarantined"))
    }

    /// Looks up `hash`, verifying the entry end to end. Corrupt entries
    /// are quarantined as a side effect and never returned.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] for filesystem failures (including a failed
    /// quarantine rename — a corrupt entry that cannot be moved aside
    /// must not be silently left in place).
    pub fn lookup(&self, hash: u64) -> Result<Lookup, CacheError> {
        let path = self.entry_path(hash);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Lookup::Miss),
            Err(e) => return Err(e.into()),
        };
        match decode_entry(&bytes, hash) {
            Ok(outcome) => Ok(Lookup::Hit(outcome)),
            Err(CacheError::Corrupt(_)) => {
                fs::rename(&path, self.quarantine_path(hash)).map_err(CacheError::Io)?;
                Ok(Lookup::Quarantined)
            }
            Err(e) => Err(e),
        }
    }

    /// Stores `outcome` under `hash` crash-safely: temp file in the same
    /// directory, synced, renamed over the final name.
    ///
    /// `corrupt_payload_byte` is the [`rsr_core::FaultKind::CorruptCacheEntry`]
    /// injection point: the last payload byte is flipped *after* the
    /// checksum is computed, producing exactly the damage a lying disk
    /// would — a complete, well-formed file whose checksum no longer
    /// matches.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from writing, syncing, or renaming.
    pub fn store(
        &self,
        hash: u64,
        outcome: &CachedOutcome,
        corrupt_payload_byte: bool,
    ) -> io::Result<()> {
        let mut bytes = encode_entry(hash, outcome);
        if corrupt_payload_byte {
            let at = bytes.len() - TRAILER_LEN - 1;
            bytes[at] ^= 0x01;
        }
        let tmp = self.dir.join(format!(".{hash:016x}.rsrc.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.entry_path(hash))
    }
}

/// Opens the cache directory's append-only queue journal, creating it if
/// absent. (Exposed to the daemon module; the format lives with the
/// daemon's recovery logic.)
pub(crate) fn open_journal_file(dir: &Path) -> io::Result<File> {
    OpenOptions::new().create(true).append(true).open(dir.join(JOURNAL_NAME))
}

/// Reads the journal's current contents, tolerating a missing file.
pub(crate) fn read_journal(dir: &Path) -> io::Result<String> {
    match fs::read_to_string(dir.join(JOURNAL_NAME)) {
        Ok(s) => Ok(s),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(String::new()),
        Err(e) => Err(e),
    }
}

/// Atomically replaces the journal with `contents` (compaction).
pub(crate) fn rewrite_journal(dir: &Path, contents: &str) -> io::Result<()> {
    let tmp = dir.join(".journal.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(tmp, dir.join(JOURNAL_NAME))
}

pub(crate) const JOURNAL_NAME: &str = "queue.journal";

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_outcome() -> CachedOutcome {
        CachedOutcome {
            policy: WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
            cluster_ipcs: vec![1.25, 0.75, 2.0],
            cluster_cpis: vec![0.8, 4.0 / 3.0, 0.5],
            hot_insts: 6_000,
            skipped_insts: 94_000,
            log_bytes_peak: 12_345,
            log_records: 2_222,
            warm_updates: 0,
            recon: ReconStats { mem_scanned: 99, pht_exact: 3, ..Default::default() },
            clusters_degraded: 1,
        }
    }

    #[test]
    fn entries_round_trip() {
        let outcome = sample_outcome();
        let bytes = encode_entry(0xabcd, &outcome);
        let back = decode_entry(&bytes, 0xabcd).unwrap();
        assert_eq!(back, outcome);
        assert_eq!(back.est_ipc(), outcome.est_ipc());
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let outcome = sample_outcome();
        let bytes = encode_entry(0xabcd, &outcome);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut damaged = bytes.clone();
                damaged[i] ^= 1 << bit;
                assert!(
                    matches!(decode_entry(&damaged, 0xabcd), Err(CacheError::Corrupt(_))),
                    "flip of byte {i} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn truncation_and_extension_are_rejected() {
        let outcome = sample_outcome();
        let bytes = encode_entry(7, &outcome);
        for keep in 0..bytes.len() {
            assert!(
                matches!(decode_entry(&bytes[..keep], 7), Err(CacheError::Corrupt(_))),
                "truncation to {keep} bytes must be rejected"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(decode_entry(&extended, 7), Err(CacheError::Corrupt(_))));
        assert!(matches!(decode_entry(&bytes, 8), Err(CacheError::Corrupt(_))), "wrong hash");
    }

    #[test]
    fn store_lookup_and_quarantine() {
        let dir = std::env::temp_dir().join(format!("rsr-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let outcome = sample_outcome();

        assert!(matches!(cache.lookup(1).unwrap(), Lookup::Miss));
        cache.store(1, &outcome, false).unwrap();
        match cache.lookup(1).unwrap() {
            Lookup::Hit(got) => assert_eq!(got, outcome),
            other => panic!("expected hit, got {other:?}"),
        }

        // A corrupt write (the injected-fault path) is quarantined on
        // read, then missing, and a clean rewrite works again.
        cache.store(2, &outcome, true).unwrap();
        assert!(matches!(cache.lookup(2).unwrap(), Lookup::Quarantined));
        assert!(cache.quarantine_path(2).exists());
        assert!(matches!(cache.lookup(2).unwrap(), Lookup::Miss));
        cache.store(2, &outcome, false).unwrap();
        assert!(matches!(cache.lookup(2).unwrap(), Lookup::Hit(_)));

        let _ = fs::remove_dir_all(&dir);
    }
}
