//! Minimal blocking client for the daemon's line-delimited protocol.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::protocol::{Request, Response};

/// Sends one request to a daemon at `addr` and reads one response.
///
/// # Errors
///
/// Any socket [`io::Error`]; a response line that fails to parse is
/// surfaced as [`io::ErrorKind::InvalidData`], and a connection closed
/// before responding as [`io::ErrorKind::UnexpectedEof`].
pub fn request(addr: &str, req: &Request) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let mut line = req.encode();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()?;
    let mut reply = String::new();
    if BufReader::new(stream).read_line(&mut reply)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "daemon closed the connection before responding",
        ));
    }
    Response::parse(reply.trim_end())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}
