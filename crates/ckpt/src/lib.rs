//! # rsr-ckpt — live-points-style checkpoints for sampled simulation
//!
//! The paper's related work includes *Simulation Sampling with Live-points*
//! (Wenisch et al., ISPASS 2006): instead of functionally fast-forwarding
//! (and warming) between clusters on every experiment, store a small
//! checkpoint per sample point — the warmed microarchitectural state plus
//! only the *live* architectural state the sample actually reads — and
//! replay samples directly from the library.
//!
//! This crate implements that idea on top of the workspace:
//!
//! * [`LivePointLibrary::build`] runs one sampled simulation under a chosen
//!   warm-up policy and captures, at each cluster start, the warmed
//!   [`MemHierarchy`] + [`Predictor`], the register state, and exactly the
//!   memory pages the cluster will touch (discovered with a scout pass —
//!   functional execution is deterministic, so the touched-page set is
//!   exact);
//! * [`LivePointLibrary::replay`] re-simulates every sample point from the
//!   library with *no* functional fast-forwarding at all, reproducing the
//!   build-time per-cluster results bit for bit;
//! * [`LivePointLibrary::approx_bytes`] accounts the storage this trades
//!   for that speed.
//!
//! ```no_run
//! use rsr_ckpt::LivePointLibrary;
//! use rsr_core::{MachineConfig, SamplingRegimen, WarmupPolicy};
//! use rsr_workloads::{Benchmark, WorkloadParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Benchmark::Gcc.build(&WorkloadParams::default());
//! let machine = MachineConfig::paper();
//! let library = LivePointLibrary::build(
//!     &program,
//!     &machine,
//!     SamplingRegimen::new(50, 2000),
//!     8_000_000,
//!     WarmupPolicy::Smarts { cache: true, bp: true },
//!     42,
//! )?;
//! // Later experiments replay in milliseconds instead of re-skipping.
//! let replay = library.replay(&machine)?;
//! println!("IPC {:.3} from {} checkpoints ({} KiB)",
//!     replay.est_ipc(), library.len(), library.approx_bytes() / 1024);
//! # Ok(())
//! # }
//! ```

use std::collections::HashSet;
use std::time::{Duration, Instant};

use rsr_branch::Predictor;
use rsr_cache::MemHierarchy;
use rsr_core::{
    skip_with, skip_with_smarts_warming, ClusterWindow, MachineConfig, SamplingRegimen, Schedule,
    SimError, WarmupPolicy,
};
use rsr_func::{ArchState, Cpu, PAGE_BYTES};
use rsr_isa::Program;
use rsr_stats::ClusterSample;
use rsr_timing::simulate_cluster;

/// One captured memory page.
#[derive(Clone, Debug, PartialEq, Eq)]
struct LivePage {
    page_no: u64,
    bytes: Vec<u8>,
}

/// One sample point: warmed microarchitectural state plus the live subset
/// of architectural state.
#[derive(Clone, Debug)]
pub struct LivePoint {
    /// The cluster this checkpoint belongs to.
    pub window: ClusterWindow,
    arch: ArchState,
    pages: Vec<LivePage>,
    hier: MemHierarchy,
    pred: Predictor,
    /// CPI measured when the library was built (for validation).
    pub build_cpi: f64,
}

impl LivePoint {
    /// Number of live pages captured.
    pub fn live_pages(&self) -> usize {
        self.pages.len()
    }
}

/// A library of live-points over one program.
#[derive(Clone, Debug)]
pub struct LivePointLibrary {
    program: Program,
    points: Vec<LivePoint>,
    /// Wall time spent building (the one-time cost replays amortize).
    pub build_time: Duration,
}

/// Result of replaying a library.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Per-cluster CPIs (estimation domain, as in `rsr-core`).
    pub cpi_clusters: ClusterSample,
    /// Per-cluster IPCs.
    pub ipc_clusters: ClusterSample,
    /// Wall time of the replay.
    pub wall: Duration,
}

impl ReplayOutcome {
    /// IPC estimate (inverse mean CPI).
    pub fn est_ipc(&self) -> f64 {
        let cpi = self.cpi_clusters.mean();
        if cpi == 0.0 {
            0.0
        } else {
            1.0 / cpi
        }
    }
}

impl LivePointLibrary {
    /// Builds a library: one sampled simulation under `policy`, capturing a
    /// live-point at every cluster start.
    ///
    /// Only non-logging warm-up policies are supported for library
    /// construction (`None`, `Smarts`, `FixedPeriod` behave identically to
    /// a sequential `rsr_core::RunSpec` run); the point of a library is that *future*
    /// runs skip warm-up entirely, so build once with the most accurate
    /// warming you can afford.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on load/execution failure, or if `policy` is a
    /// logging policy (unsupported here).
    pub fn build(
        program: &Program,
        machine: &MachineConfig,
        regimen: SamplingRegimen,
        total_insts: u64,
        policy: WarmupPolicy,
        schedule_seed: u64,
    ) -> Result<LivePointLibrary, SimError> {
        if policy.needs_log() || policy.needs_profiling() {
            // Logging/profiling policies interleave with the hot phase in
            // ways a snapshot cannot capture; use SMARTS or fixed-period.
            return Err(SimError::Spec(
                "live-point libraries need a non-logging, non-profiling warm-up policy",
            ));
        }
        let t = Instant::now();
        let schedule = Schedule::generate(regimen, total_insts, schedule_seed);
        let mut cpu = Cpu::new(program)?;
        // Microarchitectural state carries over across windows during the
        // build, exactly as `rsr-core`'s sequential sampler warms it; each
        // live-point then snapshots that state, so replay reproduces the
        // build bit for bit without re-warming.
        let mut hier = MemHierarchy::new(machine.hier.clone());
        let mut pred = Predictor::new(machine.pred);
        let mut points = Vec::with_capacity(schedule.len());
        let mut pos = 0u64;

        for &w in schedule.windows() {
            let skip = w.start - pos;
            match policy {
                WarmupPolicy::None => skip_with(&mut cpu, skip, |_| {})?,
                WarmupPolicy::Smarts { cache: true, bp: true } => {
                    skip_with_smarts_warming(&mut cpu, &mut hier, &mut pred, skip)?
                }
                WarmupPolicy::Smarts { .. } | WarmupPolicy::FixedPeriod { .. } => {
                    // Partial warming variants: warm everything for the
                    // library (a library should hold the best state).
                    skip_with_smarts_warming(&mut cpu, &mut hier, &mut pred, skip)?
                }
                // Logging/profiling policies were rejected above; if a
                // future variant slips through, fail typed, not by panic.
                _ => {
                    return Err(SimError::Spec(
                        "live-point libraries need a non-logging, non-profiling warm-up policy",
                    ))
                }
            }

            // Scout pass on a clone: find the pages this cluster touches.
            let mut scout = cpu.clone();
            let mut touched: HashSet<u64> = HashSet::new();
            for _ in 0..w.len {
                let r = scout.step()?;
                touched.insert(r.pc / PAGE_BYTES);
                if let Some(m) = r.mem {
                    touched.insert(m.addr / PAGE_BYTES);
                    let end = m.addr + m.width.bytes() - 1;
                    touched.insert(end / PAGE_BYTES);
                }
                if scout.halted() {
                    break;
                }
            }
            // Capture the live pages from the *pre-cluster* state.
            let mut page_nos: Vec<u64> = touched.into_iter().collect();
            page_nos.sort_unstable();
            let pages = page_nos
                .into_iter()
                .map(|p| LivePage {
                    page_no: p,
                    bytes: cpu.mem_mut().read_vec(p * PAGE_BYTES, PAGE_BYTES as usize),
                })
                .collect();

            let arch = cpu.arch_state();
            let point_hier = hier.clone();
            let point_pred = pred.clone();

            // Advance the real machine through the cluster.
            let stats = simulate_cluster(&machine.core, &mut cpu, &mut hier, &mut pred, w.len)?;
            if stats.instructions < w.len {
                return Err(SimError::Exec(rsr_func::ExecError::Halted));
            }
            points.push(LivePoint {
                window: w,
                arch,
                pages,
                hier: point_hier,
                pred: point_pred,
                build_cpi: stats.cycles as f64 / stats.instructions as f64,
            });
            pos = w.end();
        }
        Ok(LivePointLibrary { program: program.clone(), points, build_time: t.elapsed() })
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the library holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points.
    pub fn points(&self) -> &[LivePoint] {
        &self.points
    }

    /// Approximate storage held by the live architectural state (pages +
    /// registers). Microarchitectural snapshots are counted separately by
    /// [`LivePointLibrary::approx_micro_bytes`].
    pub fn approx_bytes(&self) -> usize {
        self.points
            .iter()
            .map(|p| p.pages.iter().map(|pg| pg.bytes.len() + 8).sum::<usize>() + 512)
            .sum()
    }

    /// Approximate storage of the warmed microarchitectural snapshots
    /// (cache tag arrays + predictor tables), assuming a dense encoding.
    pub fn approx_micro_bytes(&self) -> usize {
        // Tags: ~9 bytes/line; PHT: 2 bits/entry; BTB: ~12 bytes/entry.
        let per_point = |p: &LivePoint| {
            let lines = p.hier.l1i.num_sets() * p.hier.l1i.config().assoc
                + p.hier.l1d.num_sets() * p.hier.l1d.config().assoc
                + p.hier.l2.num_sets() * p.hier.l2.config().assoc;
            let pht = p.pred.gshare.num_entries() / 4;
            let btb = p.pred.btb.num_entries() * 12;
            lines * 9 + pht + btb
        };
        self.points.iter().map(per_point).sum()
    }

    /// Replays every sample point: restore, simulate the cluster, collect
    /// per-cluster results. No functional fast-forwarding happens at all.
    ///
    /// # Errors
    ///
    /// Propagates simulation faults (none are expected for a well-formed
    /// library).
    pub fn replay(&self, machine: &MachineConfig) -> Result<ReplayOutcome, SimError> {
        let t = Instant::now();
        let mut cpis = ClusterSample::new();
        let mut ipcs = ClusterSample::new();
        for p in &self.points {
            let mut cpu = Cpu::new(&self.program)?;
            cpu.restore_arch(&p.arch);
            for pg in &p.pages {
                cpu.mem_mut().write_slice(pg.page_no * PAGE_BYTES, &pg.bytes);
            }
            let mut hier = p.hier.clone();
            let mut pred = p.pred.clone();
            let stats =
                simulate_cluster(&machine.core, &mut cpu, &mut hier, &mut pred, p.window.len)?;
            cpis.push(stats.cycles as f64 / stats.instructions.max(1) as f64);
            ipcs.push(stats.ipc());
        }
        Ok(ReplayOutcome { cpi_clusters: cpis, ipc_clusters: ipcs, wall: t.elapsed() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_core::{Pct, RunSpec};
    use rsr_workloads::{Benchmark, WorkloadParams};

    fn program() -> Program {
        Benchmark::Parser.build(&WorkloadParams { scale: 0.05, ..Default::default() })
    }

    fn build_small() -> (LivePointLibrary, MachineConfig) {
        let machine = MachineConfig::paper();
        let lib = LivePointLibrary::build(
            &program(),
            &machine,
            SamplingRegimen::new(6, 500),
            120_000,
            WarmupPolicy::Smarts { cache: true, bp: true },
            9,
        )
        .unwrap();
        (lib, machine)
    }

    #[test]
    fn replay_reproduces_build_results_exactly() {
        let (lib, machine) = build_small();
        assert_eq!(lib.len(), 6);
        let replay = lib.replay(&machine).unwrap();
        for (point, &cpi) in lib.points().iter().zip(replay.cpi_clusters.values()) {
            assert_eq!(point.build_cpi, cpi, "cluster at {}", point.window.start);
        }
    }

    #[test]
    fn replay_matches_direct_sampled_run() {
        // The library built under SMARTS must reproduce the direct sampled
        // run's estimate under the same policy/schedule.
        let machine = MachineConfig::paper();
        let p = program();
        let regimen = SamplingRegimen::new(6, 500);
        let direct = RunSpec::new(&p, &machine)
            .regimen(regimen)
            .total_insts(120_000)
            .policy(WarmupPolicy::Smarts { cache: true, bp: true })
            .seed(9)
            .run()
            .unwrap();
        let lib = LivePointLibrary::build(
            &p,
            &machine,
            regimen,
            120_000,
            WarmupPolicy::Smarts { cache: true, bp: true },
            9,
        )
        .unwrap();
        let replay = lib.replay(&machine).unwrap();
        assert_eq!(direct.cpi_clusters.values(), replay.cpi_clusters.values());
        assert_eq!(direct.est_ipc(), replay.est_ipc());
    }

    #[test]
    fn replay_is_much_faster_than_building() {
        let (lib, machine) = build_small();
        let replay = lib.replay(&machine).unwrap();
        // Replay does no fast-forwarding; even in debug builds it must be
        // several times faster than the build.
        assert!(
            replay.wall < lib.build_time / 2,
            "replay {:?} vs build {:?}",
            replay.wall,
            lib.build_time
        );
    }

    #[test]
    fn live_pages_are_a_small_subset() {
        let (lib, _machine) = build_small();
        // parser at scale 0.05 holds ~1MB of data; a 500-instruction
        // cluster touches far fewer pages than that.
        for p in lib.points() {
            assert!(p.live_pages() > 0);
            assert!(p.live_pages() < 200, "{} pages", p.live_pages());
        }
        assert!(lib.approx_bytes() > 0);
        assert!(lib.approx_micro_bytes() > 0);
    }

    #[test]
    fn logging_policies_are_rejected() {
        let machine = MachineConfig::paper();
        let err = LivePointLibrary::build(
            &program(),
            &machine,
            SamplingRegimen::new(4, 500),
            100_000,
            WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
            1,
        );
        assert!(err.is_err());
    }
}
