//! # rsr-simpoint — SimPoint-style representative sampling
//!
//! A reimplementation of the SimPoint methodology (Sherwood et al.) used by
//! the paper's Figure 9 comparison: basic-block-vector profiling over fixed
//! intervals, random projection, k-means clustering (best-of-N restarts),
//! centroid-nearest simulation-point selection with cluster weights, and
//! weighted-IPC simulation with or without SMARTS functional warming while
//! fast-forwarding between points.
//!
//! ```no_run
//! use rsr_core::MachineConfig;
//! use rsr_simpoint::{analyze, simulate, SimpointConfig};
//! use rsr_workloads::{Benchmark, WorkloadParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Benchmark::Gcc.build(&WorkloadParams::default());
//! let cfg = SimpointConfig::new(50_000);
//! let analysis = analyze(&program, 8_000_000, &cfg)?;
//! let outcome = simulate(&program, &MachineConfig::paper(), &analysis, &cfg)?;
//! println!("SimPoint IPC estimate: {:.3}", outcome.est_ipc);
//! # Ok(())
//! # }
//! ```

mod bbv;
mod kmeans;
#[allow(clippy::module_inception)]
mod simpoint;

pub use bbv::{profile_bbvs, project, IntervalBbv};
pub use kmeans::{kmeans, Clustering};
pub use simpoint::{
    analyze, simulate, Simpoint, SimpointAnalysis, SimpointConfig, SimpointOutcome,
};
