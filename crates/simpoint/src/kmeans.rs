//! Seeded k-means (Lloyd's algorithm with k-means++ initialization),
//! best-of-N restarts by distortion — the clustering core of SimPoint.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of one clustering.
#[derive(Clone, Debug, PartialEq)]
pub struct Clustering {
    /// Cluster index per data point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids.
    pub distortion: f64,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Points assigned to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments.iter().enumerate().filter(|(_, &a)| a == c).map(|(i, _)| i).collect()
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn kmeanspp_init(data: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..data.len())].clone());
    let mut d2: Vec<f64> = data.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let sum: f64 = d2.iter().sum();
        let next = if sum <= f64::EPSILON {
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen::<f64>() * sum;
            let mut chosen = data.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(data[next].clone());
        let c = centroids.last().expect("just pushed");
        for (i, p) in data.iter().enumerate() {
            d2[i] = d2[i].min(dist2(p, c));
        }
    }
    centroids
}

fn lloyd(data: &[Vec<f64>], mut centroids: Vec<Vec<f64>>, rng: &mut StdRng) -> Clustering {
    let k = centroids.len();
    let dims = data[0].len();
    let mut assignments = vec![0usize; data.len()];
    for _iter in 0..60 {
        let mut changed = false;
        for (i, p) in data.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist2(p, &centroids[a]).partial_cmp(&dist2(p, &centroids[b])).expect("finite")
                })
                .expect("k > 0");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed && _iter > 0 {
            break;
        }
        // Recompute centroids; re-seed empty clusters from random points.
        let mut sums = vec![vec![0.0f64; dims]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in data.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, &v) in sums[assignments[i]].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                centroids[c] = data[rng.gen_range(0..data.len())].clone();
            } else {
                for s in sums[c].iter_mut() {
                    *s /= counts[c] as f64;
                }
                centroids[c] = std::mem::take(&mut sums[c]);
            }
        }
    }
    let distortion = data.iter().zip(&assignments).map(|(p, &a)| dist2(p, &centroids[a])).sum();
    Clustering { assignments, centroids, distortion }
}

/// Clusters `data` into (at most) `k` clusters, taking the best of
/// `restarts` seeded runs by distortion. `k` is clamped to the number of
/// points.
///
/// # Panics
///
/// Panics if `data` is empty or `k` is zero.
pub fn kmeans(data: &[Vec<f64>], k: usize, restarts: usize, seed: u64) -> Clustering {
    assert!(!data.is_empty(), "kmeans needs data");
    assert!(k > 0, "kmeans needs k > 0");
    let k = k.min(data.len());
    let mut best: Option<Clustering> = None;
    for r in 0..restarts.max(1) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(r as u64 * 0x9e37));
        let init = kmeanspp_init(data, k, &mut rng);
        let c = lloyd(data, init, &mut rng);
        if best.as_ref().is_none_or(|b| c.distortion < b.distortion) {
            best = Some(c);
        }
    }
    best.expect("at least one restart")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: f64, n: usize, spread: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| vec![center + rng.gen_range(-spread..spread), center]).collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut data = blob(0.0, 20, 0.1, 1);
        data.extend(blob(10.0, 20, 0.1, 2));
        let c = kmeans(&data, 2, 3, 9);
        assert_eq!(c.k(), 2);
        // All points of each blob share a cluster.
        let first = c.assignments[0];
        assert!(c.assignments[..20].iter().all(|&a| a == first));
        let second = c.assignments[20];
        assert!(c.assignments[20..].iter().all(|&a| a == second));
        assert_ne!(first, second);
        assert!(c.distortion < 1.0);
    }

    #[test]
    fn k_clamped_to_points() {
        let data = blob(0.0, 3, 0.1, 1);
        let c = kmeans(&data, 30, 2, 0);
        assert_eq!(c.k(), 3);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut data = blob(0.0, 15, 0.5, 1);
        data.extend(blob(5.0, 15, 0.5, 2));
        let a = kmeans(&data, 4, 3, 7);
        let b = kmeans(&data, 4, 3, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn members_partition_points() {
        let mut data = blob(0.0, 10, 0.5, 1);
        data.extend(blob(4.0, 10, 0.5, 2));
        let c = kmeans(&data, 3, 2, 5);
        let total: usize = (0..c.k()).map(|k| c.members(k).len()).sum();
        assert_eq!(total, data.len());
    }

    #[test]
    fn more_clusters_reduce_distortion() {
        let mut data = blob(0.0, 12, 1.0, 1);
        data.extend(blob(6.0, 12, 1.0, 2));
        data.extend(blob(12.0, 12, 1.0, 3));
        let d1 = kmeans(&data, 1, 2, 3).distortion;
        let d3 = kmeans(&data, 3, 2, 3).distortion;
        assert!(d3 < d1);
    }
}
