//! Simpoint selection and simulation.

use std::time::Instant;

use rsr_branch::Predictor;
use rsr_cache::MemHierarchy;
use rsr_core::{skip_with, skip_with_smarts_warming, MachineConfig, PhaseTimes, SimError};
use rsr_func::Cpu;
use rsr_isa::Program;
use rsr_timing::simulate_cluster;

use crate::{kmeans, profile_bbvs, project};

/// SimPoint configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SimpointConfig {
    /// Interval size in instructions (the paper compares 50 K and 10 M,
    /// scaled down here with everything else).
    pub interval_len: u64,
    /// Maximum number of simulation points (the paper uses 30).
    pub max_k: usize,
    /// Random-projection dimensionality (SimPoint uses 15).
    pub proj_dims: usize,
    /// k-means restarts.
    pub restarts: usize,
    /// Seed for projection and clustering.
    pub seed: u64,
    /// Apply SMARTS functional warming while fast-forwarding between
    /// simulation points (the paper's `-SMARTS` variants).
    pub warm: bool,
}

impl SimpointConfig {
    /// A sensible default mirroring SimPoint v3.2's common settings.
    pub fn new(interval_len: u64) -> SimpointConfig {
        SimpointConfig {
            interval_len,
            max_k: 30,
            proj_dims: 15,
            restarts: 3,
            seed: 0x51a9,
            warm: false,
        }
    }
}

/// One selected simulation point.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Simpoint {
    /// Index of the chosen interval.
    pub interval: usize,
    /// Fraction of intervals its cluster represents.
    pub weight: f64,
}

/// The offline analysis: chosen simulation points with weights.
#[derive(Clone, Debug, PartialEq)]
pub struct SimpointAnalysis {
    /// Selected points, sorted by interval index.
    pub points: Vec<Simpoint>,
    /// Number of profiled intervals.
    pub n_intervals: usize,
    /// Interval length used.
    pub interval_len: u64,
}

/// Profiles `program` and selects simulation points (BBV → random
/// projection → k-means → centroid-nearest interval per cluster).
///
/// # Errors
///
/// Propagates functional-simulation faults from profiling.
pub fn analyze(
    program: &Program,
    total_insts: u64,
    cfg: &SimpointConfig,
) -> Result<SimpointAnalysis, SimError> {
    let intervals = profile_bbvs(program, total_insts, cfg.interval_len).map_err(SimError::Exec)?;
    assert!(!intervals.is_empty(), "no intervals profiled");
    let data = project(&intervals, cfg.proj_dims, cfg.seed);
    let clustering = kmeans(&data, cfg.max_k, cfg.restarts, cfg.seed);

    let mut points = Vec::with_capacity(clustering.k());
    let n = data.len();
    for c in 0..clustering.k() {
        let members = clustering.members(c);
        if members.is_empty() {
            continue;
        }
        let centroid = &clustering.centroids[c];
        let nearest = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let da: f64 = data[a].iter().zip(centroid).map(|(x, y)| (x - y) * (x - y)).sum();
                let db: f64 = data[b].iter().zip(centroid).map(|(x, y)| (x - y) * (x - y)).sum();
                da.partial_cmp(&db).expect("finite")
            })
            .expect("nonempty cluster");
        points.push(Simpoint { interval: nearest, weight: members.len() as f64 / n as f64 });
    }
    points.sort_by_key(|p| p.interval);
    Ok(SimpointAnalysis { points, n_intervals: n, interval_len: cfg.interval_len })
}

/// Result of simulating the chosen points.
#[derive(Clone, Debug)]
pub struct SimpointOutcome {
    /// Weighted IPC estimate.
    pub est_ipc: f64,
    /// Per-point IPCs in interval order.
    pub point_ipcs: Vec<f64>,
    /// Wall-clock phase breakdown (profiling is *not* included — the paper
    /// treats it as offline).
    pub phases: PhaseTimes,
    /// Hot instructions simulated.
    pub hot_insts: u64,
}

/// Simulates the selected points: fast-forward to each (optionally with
/// SMARTS warming), simulate one interval cycle-accurately, and combine
/// IPCs by cluster weight.
///
/// # Errors
///
/// Propagates simulation faults.
pub fn simulate(
    program: &Program,
    machine: &MachineConfig,
    analysis: &SimpointAnalysis,
    cfg: &SimpointConfig,
) -> Result<SimpointOutcome, SimError> {
    let mut cpu = Cpu::new(program)?;
    let mut hier = MemHierarchy::new(machine.hier.clone());
    let mut pred = Predictor::new(machine.pred);
    let mut phases = PhaseTimes::default();
    let mut est = 0.0f64;
    let mut point_ipcs = Vec::with_capacity(analysis.points.len());
    let mut hot_insts = 0u64;
    let mut pos = 0u64;

    for p in &analysis.points {
        let start = p.interval as u64 * analysis.interval_len;
        let skip = start - pos;
        let t = Instant::now();
        if cfg.warm {
            skip_with_smarts_warming(&mut cpu, &mut hier, &mut pred, skip)
                .map_err(SimError::Exec)?;
            phases.warm += t.elapsed();
        } else {
            skip_with(&mut cpu, skip, |_| {}).map_err(SimError::Exec)?;
            phases.cold += t.elapsed();
        }
        let t = Instant::now();
        let stats =
            simulate_cluster(&machine.core, &mut cpu, &mut hier, &mut pred, analysis.interval_len)
                .map_err(SimError::Exec)?;
        phases.hot += t.elapsed();
        hot_insts += stats.instructions;
        point_ipcs.push(stats.ipc());
        est += p.weight * stats.ipc();
        pos = start + analysis.interval_len;
    }
    Ok(SimpointOutcome { est_ipc: est, point_ipcs, phases, hot_insts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_workloads::{Benchmark, WorkloadParams};

    fn cfg(interval: u64) -> SimpointConfig {
        SimpointConfig { max_k: 6, restarts: 2, ..SimpointConfig::new(interval) }
    }

    #[test]
    fn weights_sum_to_one() {
        let p = Benchmark::Gcc.build(&WorkloadParams { scale: 0.05, ..Default::default() });
        let a = analyze(&p, 100_000, &cfg(5_000)).unwrap();
        let sum: f64 = a.points.iter().map(|p| p.weight).sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights sum {sum}");
        assert!(!a.points.is_empty() && a.points.len() <= 6);
        // Points sorted by interval for single-pass simulation.
        assert!(a.points.windows(2).all(|w| w[0].interval < w[1].interval));
    }

    #[test]
    fn analysis_is_deterministic() {
        let p = Benchmark::Twolf.build(&WorkloadParams { scale: 0.05, ..Default::default() });
        let a = analyze(&p, 80_000, &cfg(4_000)).unwrap();
        let b = analyze(&p, 80_000, &cfg(4_000)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn simulation_estimates_ipc() {
        let machine = MachineConfig::paper();
        let p = Benchmark::Twolf.build(&WorkloadParams { scale: 0.05, ..Default::default() });
        let c = cfg(4_000);
        let a = analyze(&p, 80_000, &c).unwrap();
        let out = simulate(&p, &machine, &a, &c).unwrap();
        assert!(out.est_ipc > 0.0);
        assert_eq!(out.point_ipcs.len(), a.points.len());
        assert_eq!(out.hot_insts, a.points.len() as u64 * 4_000);
    }

    #[test]
    fn warming_variant_runs() {
        let machine = MachineConfig::paper();
        let p = Benchmark::Mcf.build(&WorkloadParams { scale: 0.02, ..Default::default() });
        let c = SimpointConfig { warm: true, ..cfg(4_000) };
        let a = analyze(&p, 80_000, &c).unwrap();
        let cold_cfg = SimpointConfig { warm: false, ..c };
        let cold = simulate(&p, &machine, &a, &cold_cfg).unwrap();
        let warm = simulate(&p, &machine, &a, &c).unwrap();
        // Warming while skipping must not *hurt* the estimate dramatically;
        // for an L2-hostile pointer chase it should raise measured IPC
        // accuracy (warm caches -> different IPC than cold-start bias).
        assert_ne!(cold.est_ipc, warm.est_ipc);
        assert!(warm.phases.warm > std::time::Duration::ZERO);
    }
}
