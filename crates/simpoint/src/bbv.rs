//! Basic-block-vector profiling (Sherwood et al., ASPLOS 2002).
//!
//! A basic block is identified by its dynamic entry PC (the instruction
//! after a control transfer). Execution is split into fixed-size intervals;
//! each interval's vector counts instructions executed per block. Vectors
//! are normalized to frequencies and randomly projected to a small dense
//! dimension, exactly as the SimPoint tool does before clustering.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_func::{Cpu, ExecError};
use rsr_isa::{Addr, Program};

/// A profiled interval: sparse basic-block instruction counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalBbv {
    counts: HashMap<Addr, u64>,
    total: u64,
}

impl IntervalBbv {
    /// Instructions attributed in this interval.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sparse (block entry PC → instruction count) view.
    pub fn counts(&self) -> &HashMap<Addr, u64> {
        &self.counts
    }

    fn add(&mut self, block: Addr, len: u64) {
        *self.counts.entry(block).or_insert(0) += len;
        self.total += len;
    }
}

/// Profiles the first `total_insts` instructions of `program` into
/// intervals of `interval_len` instructions. A trailing partial interval is
/// kept if it covers at least half an interval.
///
/// # Errors
///
/// Propagates functional-simulation faults; a clean `halt` simply ends the
/// profile.
///
/// # Panics
///
/// Panics if `interval_len` is zero.
pub fn profile_bbvs(
    program: &Program,
    total_insts: u64,
    interval_len: u64,
) -> Result<Vec<IntervalBbv>, ExecError> {
    assert!(interval_len > 0, "interval length must be nonzero");
    let mut cpu = Cpu::new(program).map_err(|_| ExecError::Halted)?;
    let mut intervals = Vec::new();
    let mut current = IntervalBbv::default();
    let mut block_start: Addr = program.entry();
    let mut block_len: u64 = 0;
    let mut in_interval: u64 = 0;

    for _ in 0..total_insts {
        if cpu.halted() {
            break;
        }
        let r = cpu.step()?;
        block_len += 1;
        in_interval += 1;
        let transfers = r.branch.is_some() || r.next_pc != r.pc + 4;
        if transfers || in_interval == interval_len {
            current.add(block_start, block_len);
            block_start = r.next_pc;
            block_len = 0;
        }
        if in_interval == interval_len {
            intervals.push(std::mem::take(&mut current));
            in_interval = 0;
        }
    }
    if block_len > 0 {
        current.add(block_start, block_len);
    }
    if current.total * 2 >= interval_len {
        intervals.push(current);
    }
    Ok(intervals)
}

/// Projects sparse BBVs to `dims` dense dimensions with a seeded random
/// projection (each block PC hashes to a deterministic ±1 pattern), then
/// normalizes each vector to unit L1 frequency mass first, matching
/// SimPoint's frequency vectors.
pub fn project(intervals: &[IntervalBbv], dims: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(dims > 0, "projection needs at least one dimension");
    let mut out = Vec::with_capacity(intervals.len());
    for iv in intervals {
        let mut v = vec![0.0f64; dims];
        if iv.total == 0 {
            out.push(v);
            continue;
        }
        // Accumulate in block order: HashMap iteration order varies per
        // map instance, and float addition is not associative, so summing
        // in hash order makes the projection (and any k-means tie it
        // feeds) differ from call to call.
        let mut blocks: Vec<(Addr, u64)> = iv.counts.iter().map(|(&b, &c)| (b, c)).collect();
        blocks.sort_unstable();
        for (block, count) in blocks {
            let freq = count as f64 / iv.total as f64;
            // A per-block deterministic RNG stream gives a stable random
            // projection without materializing the (huge) matrix.
            let mut rng = StdRng::seed_from_u64(seed ^ block.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            for slot in v.iter_mut() {
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                *slot += sign * freq;
            }
        }
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_isa::{Asm, Reg};

    /// A program with two phases: a tight ALU loop, then a different loop.
    fn two_phase_program(phase1_iters: i64) -> Program {
        let mut a = Asm::new();
        a.li(Reg::S0, phase1_iters);
        let p1 = a.bind_new("phase1");
        a.addi(Reg::T0, Reg::T0, 1);
        a.addi(Reg::T1, Reg::T1, 2);
        a.addi(Reg::S0, Reg::S0, -1);
        a.bne(Reg::S0, Reg::ZERO, p1);
        let p2 = a.bind_new("phase2");
        a.xor(Reg::T2, Reg::T2, Reg::T0);
        a.slli(Reg::T3, Reg::T2, 1);
        a.j(p2);
        a.finish().unwrap()
    }

    #[test]
    fn interval_count_and_mass() {
        let p = two_phase_program(10_000);
        let ivs = profile_bbvs(&p, 50_000, 5_000).unwrap();
        assert_eq!(ivs.len(), 10);
        for iv in &ivs {
            assert_eq!(iv.total(), 5_000);
        }
    }

    #[test]
    fn phases_have_distinct_blocks() {
        let p = two_phase_program(10_000);
        let ivs = profile_bbvs(&p, 50_000, 5_000).unwrap();
        // First interval's dominant block differs from the last interval's.
        let dominant =
            |iv: &IntervalBbv| iv.counts().iter().max_by_key(|(_, &c)| c).map(|(&b, _)| b).unwrap();
        assert_ne!(dominant(&ivs[0]), dominant(&ivs[9]));
    }

    #[test]
    fn projection_is_deterministic_and_separates_phases() {
        let p = two_phase_program(10_000);
        let ivs = profile_bbvs(&p, 50_000, 5_000).unwrap();
        let v1 = project(&ivs, 15, 7);
        let v2 = project(&ivs, 15, 7);
        assert_eq!(v1, v2);
        let dist =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        // Same-phase intervals are much closer than cross-phase ones.
        let same = dist(&v1[0], &v1[1]);
        let cross = dist(&v1[0], &v1[9]);
        assert!(cross > same * 4.0, "cross {cross} same {same}");
    }

    #[test]
    fn halting_program_truncates_profile() {
        let mut a = Asm::new();
        for _ in 0..100 {
            a.nop();
        }
        a.halt();
        let p = a.finish().unwrap();
        let ivs = profile_bbvs(&p, 10_000, 50).unwrap();
        // 101 instructions, 50-instruction intervals: 2 full + 1 partial
        // (1 instruction < half an interval, dropped).
        assert_eq!(ivs.len(), 2);
    }
}
