//! The `rsr` binary: see [`rsr_cli::USAGE`].

use std::process::ExitCode;
use std::time::Duration;

use rsr_ckpt::LivePointLibrary;
use rsr_cli::{parse, CliError, Command, ServiceError, SubmitAction};
use rsr_core::{ColdSpec, DetailSpec, MachineConfig, RunSpec, SamplingRegimen, SweepSpec};
use rsr_func::Cpu;
use rsr_serve::{Daemon, JobSpec, Request, Response, ServeConfig};
use rsr_simpoint::{analyze, simulate, SimpointConfig};
use rsr_workloads::{Benchmark, WorkloadParams};

/// `println!` that exits quietly when stdout's reader has gone away
/// (`rsr ... | head` closes the pipe mid-stream), matching the SIGPIPE
/// convention instead of panicking.
macro_rules! outln {
    ($($t:tt)*) => {{
        use std::io::Write;
        if writeln!(std::io::stdout(), $($t)*).is_err() {
            std::process::exit(0);
        }
    }};
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(CliError::from(e).exit_code());
        }
    };
    match execute(cmd) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // Display already folds each error's source chain into one
            // line; the exit code carries the class for scripts.
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn build(bench: Benchmark) -> rsr_isa::Program {
    bench.build(&WorkloadParams::default())
}

/// One request/response exchange with a daemon for `rsr submit`.
fn submit(addr: &str, action: SubmitAction) -> Result<(), CliError> {
    let req = match action {
        SubmitAction::Stats => Request::Stats,
        SubmitAction::Drain => Request::Drain,
        SubmitAction::Job {
            bench,
            policy,
            clusters,
            len,
            n,
            seed,
            l1d_kb,
            ghr_bits,
            shard_span,
            log_budget,
            deadline_ms,
            no_wait,
        } => Request::Submit {
            job: JobSpec {
                bench,
                n_clusters: clusters,
                cluster_len: len,
                total_insts: n,
                seed,
                policy,
                l1d_kb,
                ghr_bits,
                shard_span,
                log_budget,
                deadline_ms,
            },
            wait: !no_wait,
        },
    };
    let response = rsr_serve::request(addr, &req)
        .map_err(|e| CliError::Service(ServiceError::Unavailable(e.to_string())))?;
    match response {
        Response::Done {
            hash,
            source,
            attempts,
            est_ipc,
            ipc_err,
            clusters,
            clusters_degraded,
            log_records,
        } => {
            outln!(
                "{hash:016x} {}: IPC {est_ipc:.4} ± {ipc_err:.4} (95% CI), {clusters} clusters, \
                 {} record{}, {attempts} attempt{}",
                source.as_str(),
                log_records,
                if log_records == 1 { "" } else { "s" },
                if attempts == 1 { "" } else { "s" }
            );
            if clusters_degraded > 0 {
                outln!(
                    "guards: {clusters_degraded} cluster{} degraded to stale-state warmup",
                    if clusters_degraded == 1 { "" } else { "s" }
                );
            }
        }
        Response::Queued { hash } => outln!("queued {hash:016x}"),
        Response::Draining { settled } => outln!("daemon drained; {settled} jobs settled"),
        Response::Stats(stats) => {
            for (key, value) in stats.rows() {
                outln!("{key:<12} {value}");
            }
        }
        Response::Overloaded { inflight, limit } => {
            return Err(CliError::Service(ServiceError::Overloaded { inflight, limit }))
        }
        Response::Failed { class, message, attempts, .. } => {
            return Err(CliError::Job { class, message, attempts })
        }
        Response::Error { message } => {
            return Err(CliError::Service(ServiceError::Rejected(message)))
        }
    }
    Ok(())
}

fn execute(cmd: Command) -> Result<(), CliError> {
    let machine = MachineConfig::paper();
    match cmd {
        Command::List => {
            outln!(
                "{:<8} {:>4} {:>9} {:>12} {:>12}",
                "name",
                "fp",
                "clusters",
                "cluster len",
                "default n"
            );
            for b in Benchmark::ALL {
                let r = b.default_regimen();
                outln!(
                    "{:<8} {:>4} {:>9} {:>12} {:>12}",
                    b.name(),
                    if b.is_fp() { "yes" } else { "no" },
                    r.n_clusters,
                    r.cluster_len,
                    b.default_instructions()
                );
            }
        }
        Command::Disasm { bench, head } => {
            let p = build(bench);
            for line in p.disassemble().lines().take(head) {
                outln!("{line}");
            }
            outln!("... ({} instructions, {} bytes of data)", p.text().len(), p.data().len());
        }
        Command::Trace { bench, n } => {
            let p = build(bench);
            let mut cpu = Cpu::new(&p)?;
            for _ in 0..n {
                let r = cpu.step()?;
                let mem = r
                    .mem
                    .map(|m| format!(" [{} {:#x}]", if m.is_store { "st" } else { "ld" }, m.addr))
                    .unwrap_or_default();
                let br = r
                    .branch
                    .map(|b| format!(" <{} {}>", if b.taken { "T" } else { "N" }, b.target))
                    .unwrap_or_default();
                outln!("{:>8}  {:#010x}  {}{}{}", r.seq, r.pc, r.inst, mem, br);
            }
        }
        Command::Run { bench, n } => {
            let p = build(bench);
            let out = RunSpec::new(&p, &machine).total_insts(n).run_full()?;
            outln!(
                "{bench}: IPC {:.4} over {} instructions ({} cycles, {} mispredicts, {:.2}s wall)",
                out.ipc(),
                out.stats.instructions,
                out.stats.cycles,
                out.stats.full_mispredicts,
                out.wall.as_secs_f64()
            );
        }
        Command::Sample {
            bench,
            policy,
            clusters,
            len,
            n,
            seed,
            threads,
            pipeline_depth,
            recon_threads,
            max_shard_retries,
            log_budget,
            deadline_secs,
        } => {
            // 0 workers means "run it yourself" — same as 1.
            let threads = threads.max(1);
            let p = build(bench);
            let mut spec = RunSpec::new(&p, &machine)
                .regimen(SamplingRegimen::new(clusters, len))
                .total_insts(n)
                .policy(policy)
                .seed(seed)
                .threads(threads)
                .pipeline_depth(pipeline_depth)
                .recon_threads(recon_threads);
            let depth = spec.resolved_pipeline_depth();
            let recon_workers = spec.resolved_recon_threads();
            if let Some(r) = max_shard_retries {
                spec = spec.max_shard_retries(r);
            }
            if let Some(b) = log_budget {
                spec = spec.log_budget_bytes(b);
            }
            if let Some(s) = deadline_secs {
                spec = spec.deadline(Duration::from_secs(s));
            }
            let out = spec.run()?;
            outln!(
                "{bench} under {policy}: IPC {:.4} ± {:.4} (95% CI), {} clusters",
                out.est_ipc(),
                out.ipc_error_bound_95(),
                out.clusters.len()
            );
            if out.clusters_degraded > 0 || out.shard_retries > 0 {
                outln!(
                    "guards: {} cluster{} degraded to stale-state warmup, {} shard retr{}",
                    out.clusters_degraded,
                    if out.clusters_degraded == 1 { "" } else { "s" },
                    out.shard_retries,
                    if out.shard_retries == 1 { "y" } else { "ies" }
                );
            }
            outln!(
                "phases: hot {:.3}s, cold {:.3}s, warm {:.3}s | hot insts {} | log peak {} KiB",
                out.phases.hot.as_secs_f64(),
                out.phases.cold.as_secs_f64(),
                out.phases.warm.as_secs_f64(),
                out.hot_insts,
                out.log_bytes_peak / 1024
            );
            outln!(
                "wall: {:.3}s on {} thread{}, pipeline depth {}, recon threads {}{}",
                out.wall.as_secs_f64(),
                threads,
                if threads == 1 { "" } else { "s" },
                depth,
                recon_workers,
                if threads > 1 || depth > 1 {
                    format!(" ({:.0}% of busy time overlapped)", 100.0 * out.overlap_efficiency())
                } else {
                    String::new()
                }
            );
        }
        Command::Sweep {
            bench,
            configs,
            policy,
            clusters,
            len,
            n,
            seed,
            threads,
            recon_threads,
            replay_threads,
            out,
        } => {
            let threads = threads.max(1);
            let p = build(bench);
            let grid = rsr_bench::sweep_grid(configs);
            let mut sweep = SweepSpec::new(
                ColdSpec::new(&p)
                    .regimen(SamplingRegimen::new(clusters, len))
                    .total_insts(n)
                    .seed(seed),
            )
            .cold_threads(threads)
            .replay_threads(replay_threads);
            for point in &grid {
                sweep = sweep.config(
                    point.name.clone(),
                    DetailSpec::new(&point.machine())
                        .policy(policy)
                        .threads(threads)
                        .recon_threads(recon_threads),
                );
            }
            let outcome = sweep.run()?;
            let amortization = outcome.amortization();
            // One JSON row per config; the amortization ratio is a
            // property of the whole sweep, repeated on each row so rows
            // stay self-describing when split apart.
            let mut rows = String::new();
            for (point, c) in grid.iter().zip(&outcome.configs) {
                let o = &c.outcome;
                let r = &o.recon;
                rows.push_str(&format!(
                    "{{\"name\": \"{}\", \"l1d_kb\": {}, \"ghr_bits\": {}, \
                     \"est_ipc\": {:.6}, \"ipc_ci_95\": {:.6}, \"clusters\": {}, \
                     \"log_records\": {}, \"mem_scanned\": {}, \"cache_inserted\": {}, \
                     \"cache_marked\": {}, \"branch_scanned\": {}, \"pht_exact\": {}, \
                     \"pht_guessed\": {}, \"pht_stale\": {}, \"btb_reconstructed\": {}, \
                     \"clusters_degraded\": {}, \"amortization\": {:.6}}}\n",
                    c.name,
                    point.l1d_kb,
                    point.ghr_bits,
                    o.est_ipc(),
                    o.ipc_error_bound_95(),
                    o.clusters.len(),
                    o.log_records,
                    r.mem_scanned,
                    r.cache_inserted,
                    r.cache_marked,
                    r.branch_scanned,
                    r.pht_exact,
                    r.pht_guessed,
                    r.pht_stale,
                    r.btb_reconstructed,
                    o.clusters_degraded,
                    amortization,
                ));
            }
            let summary = format!(
                "{bench} sweep: {} configs from one cold pass ({:.3}s cold, {:.3}s total, \
                 amortization {:.2})",
                outcome.configs.len(),
                outcome.cold_wall.as_secs_f64(),
                outcome.wall.as_secs_f64(),
                amortization
            );
            match out {
                Some(path) => {
                    std::fs::write(&path, &rows).map_err(|e| {
                        CliError::Usage(rsr_cli::UsageError(format!("cannot write {path}: {e}")))
                    })?;
                    outln!("wrote {path}: {summary}");
                }
                None => {
                    // Rows on stdout (machine-readable), summary aside.
                    outln!("{}", rows.trim_end());
                    eprintln!("{summary}");
                }
            }
        }
        Command::Bench {
            scale,
            seed,
            threads,
            pipeline_depth,
            recon_threads,
            replay_threads,
            sweep_configs,
            sweep_smoke,
            serve_smoke,
            out,
        } => {
            // Depth 0 (the default) benchmarks the whole pipeline matrix —
            // depth 1 plus the auto depth, when they differ — as a JSON
            // array; an explicit depth emits that one configuration as a
            // single object (the pre-matrix shape). Requested sweep and
            // service rows ride along at the end of the array.
            let samples = if pipeline_depth == 0 {
                rsr_bench::run_bench_matrix(scale, seed, threads, recon_threads)
            } else {
                vec![rsr_bench::run_bench_sample(
                    scale,
                    seed,
                    threads,
                    pipeline_depth,
                    recon_threads,
                )]
            };
            let sweep_n = if sweep_configs > 0 {
                sweep_configs
            } else if sweep_smoke {
                4
            } else {
                0
            };
            let sweep_row = (sweep_n > 0).then(|| {
                rsr_bench::run_sweep_sample(
                    scale,
                    seed,
                    sweep_n,
                    threads,
                    recon_threads,
                    replay_threads,
                )
            });
            let serve_row = serve_smoke.then(|| rsr_bench::run_serve_sample(scale, seed, 2));
            let extras: Vec<String> = sweep_row
                .iter()
                .map(rsr_bench::SweepSample::to_json)
                .chain(serve_row.iter().map(rsr_bench::ServeSample::to_json))
                .collect();
            let json = if extras.is_empty() {
                if pipeline_depth != 0 {
                    samples[0].to_json()
                } else {
                    rsr_bench::to_json_array(&samples)
                }
            } else {
                let objects: Vec<String> =
                    samples.iter().map(rsr_bench::BenchSample::to_json).chain(extras).collect();
                let mut s = String::from("[\n");
                for (i, o) in objects.iter().enumerate() {
                    s.push_str(o.trim_end());
                    s.push_str(if i + 1 < objects.len() { ",\n" } else { "\n" });
                }
                s.push_str("]\n");
                s
            };
            let sample = &samples[0];
            match out {
                Some(path) => {
                    std::fs::write(&path, &json).map_err(|e| {
                        CliError::Usage(rsr_cli::UsageError(format!("cannot write {path}: {e}")))
                    })?;
                    outln!(
                        "wrote {path}: {} IPC {:.4}, cold {:.1} MIPS, recon {:.1} ns/record, \
                         log peak {} KiB",
                        sample.bench,
                        sample.est_ipc,
                        sample.cold_mips,
                        sample.recon_ns_per_record,
                        sample.log_bytes_peak / 1024
                    );
                    if let Some(row) = &sweep_row {
                        outln!(
                            "  sweep row: {} configs, wall ratio {:.3} vs standalone, \
                             amortization {:.3}, bit-identical {}",
                            row.sweep_configs,
                            row.wall_ratio,
                            row.amortization,
                            row.bit_identical
                        );
                    }
                    if let Some(row) = &serve_row {
                        outln!(
                            "  serve row: {} jobs, cached speedup {:.1}x, hit rate {:.2}, \
                             bit-identical {}",
                            row.jobs,
                            row.cached_speedup,
                            row.hit_rate,
                            row.bit_identical
                        );
                    }
                }
                None => outln!("{}", json.trim_end()),
            }
        }
        Command::Ckpt { bench, clusters, len, n, replays } => {
            let p = build(bench);
            let library = LivePointLibrary::build(
                &p,
                &machine,
                SamplingRegimen::new(clusters, len),
                n,
                rsr_core::WarmupPolicy::Smarts { cache: true, bp: true },
                42,
            )?;
            outln!(
                "{bench}: {} points in {:.2}s ({} KiB arch, ~{} KiB micro)",
                library.len(),
                library.build_time.as_secs_f64(),
                library.approx_bytes() / 1024,
                library.approx_micro_bytes() / 1024
            );
            for r in 1..=replays {
                let out = library.replay(&machine)?;
                outln!("replay {r}: IPC {:.4} in {:.3}s", out.est_ipc(), out.wall.as_secs_f64());
            }
        }
        Command::Serve {
            cache_dir,
            addr,
            workers,
            queue_depth,
            max_job_retries,
            deadline_secs,
            scale,
        } => {
            let mut cfg = ServeConfig::new(&cache_dir);
            cfg.addr = addr;
            cfg.workers = workers;
            cfg.queue_depth = queue_depth;
            cfg.max_job_retries = max_job_retries;
            cfg.default_deadline = deadline_secs.map(Duration::from_secs);
            cfg.scale = scale;
            let daemon = Daemon::start(cfg).map_err(|e| {
                CliError::Service(ServiceError::Unavailable(format!("cannot start daemon: {e}")))
            })?;
            let resumed = daemon.stats().resumed;
            outln!(
                "rsr-serve listening on {} (cache: {cache_dir}{})",
                daemon.local_addr(),
                if resumed > 0 {
                    format!(", resumed {resumed} journaled jobs")
                } else {
                    String::new()
                }
            );
            // Blocks until a client sends `drain`; no signal handling in
            // the offline build, so shutdown is a protocol verb.
            let stats = daemon.wait();
            outln!(
                "drained: {} completed, {} failed, {} cache hits, {} deduped, {} shed, \
                 {} retries",
                stats.completed,
                stats.failed,
                stats.cache_hits,
                stats.deduped,
                stats.shed,
                stats.retries
            );
        }
        Command::Submit { addr, action } => submit(&addr, action)?,
        Command::Simpoint { bench, interval, k, warm, n } => {
            let p = build(bench);
            let cfg = SimpointConfig { warm, max_k: k, ..SimpointConfig::new(interval) };
            let analysis = analyze(&p, n, &cfg)?;
            let out = simulate(&p, &machine, &analysis, &cfg)?;
            outln!(
                "{bench}: SimPoint IPC {:.4} from {} points over {} intervals of {}",
                out.est_ipc,
                analysis.points.len(),
                analysis.n_intervals,
                interval
            );
            for (pt, ipc) in analysis.points.iter().zip(&out.point_ipcs) {
                outln!("  interval {:>6}  weight {:.3}  ipc {:.4}", pt.interval, pt.weight, ipc);
            }
        }
    }
    Ok(())
}
