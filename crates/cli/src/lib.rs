//! # rsr-cli — command-line front end
//!
//! A small driver binary (`rsr`) over the workspace:
//!
//! ```sh
//! rsr list                              # benchmarks and default regimens
//! rsr disasm gcc --head 40              # disassemble a generated workload
//! rsr trace mcf -n 20                   # retired-instruction trace head
//! rsr run twolf -n 2000000              # full cycle-accurate run
//! rsr sample twolf --policy 'r$bp' --pct 20 -n 4000000
//! rsr simpoint gcc --interval 10000 --k 10 -n 2000000
//! ```
//!
//! The argument grammar is deliberately tiny and hand-rolled (no external
//! parser dependency); this library exposes it for testing.

use rsr_core::{Pct, SimError, WarmupPolicy};
use rsr_func::{ExecError, LoadError};
use rsr_serve::FailClass;
use rsr_workloads::Benchmark;

/// The default daemon endpoint shared by `rsr serve` and `rsr submit`.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7411";

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `rsr list`
    List,
    /// `rsr disasm <bench> [--head N]`
    Disasm {
        /// Workload to disassemble.
        bench: Benchmark,
        /// Instructions to print.
        head: usize,
    },
    /// `rsr trace <bench> [-n N]`
    Trace {
        /// Workload to trace.
        bench: Benchmark,
        /// Instructions to trace.
        n: u64,
    },
    /// `rsr run <bench> [-n INSTS]`
    Run {
        /// Workload to run.
        bench: Benchmark,
        /// Instructions to simulate.
        n: u64,
    },
    /// `rsr sample <bench> [--policy P] [--pct N] [--clusters N] [--len N] [-n INSTS] [--seed S] [--threads T] [--pipeline-depth D] [--recon-threads R] [--max-shard-retries R] [--log-budget BYTES] [--deadline-secs S]`
    Sample {
        /// Workload to sample.
        bench: Benchmark,
        /// Warm-up policy.
        policy: WarmupPolicy,
        /// Number of clusters.
        clusters: usize,
        /// Cluster length.
        len: u64,
        /// Total instructions.
        n: u64,
        /// Schedule seed.
        seed: u64,
        /// Shard worker threads (1 = sequential; results are identical).
        threads: usize,
        /// Intra-shard leader/follower pipeline depth (0 = auto; results
        /// are identical at any depth).
        pipeline_depth: usize,
        /// Per-window reconstruction worker threads (0 = auto; results
        /// are identical at any count).
        recon_threads: usize,
        /// Shard-fault retry budget (`None` = engine default).
        max_shard_retries: Option<u32>,
        /// Per-region RSR log cap in bytes (`None` = unbounded).
        log_budget: Option<usize>,
        /// Wall-clock deadline in seconds (`None` = unbounded).
        deadline_secs: Option<u64>,
    },
    /// `rsr ckpt <bench> [--clusters N] [--len N] [-n INSTS] [--replays R]`
    Ckpt {
        /// Workload to checkpoint.
        bench: Benchmark,
        /// Number of clusters.
        clusters: usize,
        /// Cluster length.
        len: u64,
        /// Total instructions.
        n: u64,
        /// Replay count.
        replays: usize,
    },
    /// `rsr sweep <bench> [--configs N] [--policy P] [--pct N] [--clusters N] [--len N] [-n INSTS] [--seed S] [--threads T] [--recon-threads R] [--replay-threads W] [--out PATH]`
    Sweep {
        /// Workload to sweep.
        bench: Benchmark,
        /// Detailed machine configs fanned out from one cold pass (grid
        /// points over L1D capacity × gshare history depth).
        configs: usize,
        /// Warm-up policy applied to every config (must be a decoupled
        /// policy: reverse or none).
        policy: WarmupPolicy,
        /// Number of clusters.
        clusters: usize,
        /// Cluster length.
        len: u64,
        /// Total instructions.
        n: u64,
        /// Schedule seed.
        seed: u64,
        /// Worker threads for the cold capture and each config's replay.
        threads: usize,
        /// Per-window reconstruction worker threads (0 = auto).
        recon_threads: usize,
        /// Configs replayed concurrently per captured window (0 = auto).
        replay_threads: usize,
        /// Destination for the JSON rows (`None` = stdout).
        out: Option<String>,
    },
    /// `rsr bench [--scale S] [--seed N] [--threads T] [--pipeline-depth D] [--recon-threads R] [--replay-threads W] [--sweep-configs N] [--sweep-smoke] [--out PATH]`
    Bench {
        /// Run-length scale factor relative to the default regimen.
        scale: f64,
        /// Schedule seed.
        seed: u64,
        /// Shard worker threads (results are identical at any count).
        threads: usize,
        /// Intra-shard leader/follower pipeline depth (0 = auto; 0 also
        /// emits a depth-1 + auto-depth matrix instead of one object).
        pipeline_depth: usize,
        /// Per-window reconstruction worker threads (0 = auto).
        recon_threads: usize,
        /// Configs replayed concurrently per captured window in the
        /// sweep rows (0 = auto).
        replay_threads: usize,
        /// Append a design-space sweep row fanning this many configs out
        /// of one cold pass (0 = no sweep row).
        sweep_configs: usize,
        /// Shorthand for a small sweep row (4 configs) — what ci.sh runs.
        sweep_smoke: bool,
        /// Append a service row: an in-process daemon round-trip measuring
        /// cold-vs-cached latency and hit rate.
        serve_smoke: bool,
        /// Destination for the JSON emission (`None` = stdout).
        out: Option<String>,
    },
    /// `rsr serve [--cache DIR] [--addr A] [--workers N] [--queue-depth N] [--max-job-retries R] [--default-deadline-secs S] [--scale S]`
    Serve {
        /// Result-cache and queue-journal directory.
        cache_dir: String,
        /// Bind address (localhost; port 0 = ephemeral).
        addr: String,
        /// Worker pool size (0 = auto: host cores capped at 4).
        workers: usize,
        /// Queue slots beyond the running set before admission control
        /// sheds load.
        queue_depth: usize,
        /// Supervised retry budget per job.
        max_job_retries: u32,
        /// Deadline for jobs that do not carry their own.
        deadline_secs: Option<u64>,
        /// Workload build scale shared by all jobs.
        scale: f64,
    },
    /// `rsr submit <bench> [flags] | rsr submit --stats | rsr submit --drain`
    Submit {
        /// Daemon endpoint.
        addr: String,
        /// What to ask the daemon.
        action: SubmitAction,
    },
    /// `rsr simpoint <bench> [--interval I] [--k K] [--warm] [-n INSTS]`
    Simpoint {
        /// Workload to analyze.
        bench: Benchmark,
        /// Interval length.
        interval: u64,
        /// Maximum simulation points.
        k: usize,
        /// SMARTS-warm while fast-forwarding.
        warm: bool,
        /// Total instructions.
        n: u64,
    },
}

/// The payload of a `rsr submit` invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitAction {
    /// Submit one sampled run.
    Job {
        /// Workload to sample.
        bench: Benchmark,
        /// Warm-up policy.
        policy: WarmupPolicy,
        /// Number of clusters.
        clusters: usize,
        /// Cluster length.
        len: u64,
        /// Total instructions.
        n: u64,
        /// Schedule seed.
        seed: u64,
        /// L1D capacity override in KiB (`None` = paper geometry).
        l1d_kb: Option<u64>,
        /// Gshare history depth override (`None` = paper geometry).
        ghr_bits: Option<u32>,
        /// Shard span override (`None` = engine default).
        shard_span: Option<u64>,
        /// Per-region RSR log cap in bytes (`None` = unbounded).
        log_budget: Option<u64>,
        /// Per-job deadline in milliseconds (`None` = daemon default).
        deadline_ms: Option<u64>,
        /// Queue and return immediately instead of waiting for the result.
        no_wait: bool,
    },
    /// Read the daemon's counters.
    Stats,
    /// Drain the daemon to a clean stop.
    Drain,
}

/// A usage/parsing error with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

/// A failure of the job service itself, as opposed to the job it ran:
/// the daemon could not be reached, shed the request, or refused it.
/// All of these exit with code 8 so campaign scripts can separate
/// "retry against the service" from "the spec/workload is at fault".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// No daemon answered at the address, or the reply was not protocol.
    Unavailable(String),
    /// Admission control shed the request; retry once the queue drains.
    Overloaded {
        /// Jobs queued or running when the request arrived.
        inflight: u64,
        /// The admission limit (workers + queue depth).
        limit: u64,
    },
    /// The daemon refused the request (e.g. it is draining) or reported
    /// an internal error.
    Rejected(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Unavailable(m) => write!(f, "service unavailable: {m}"),
            ServiceError::Overloaded { inflight, limit } => write!(
                f,
                "daemon overloaded: {inflight} jobs in flight (limit {limit}); \
                 retry when the queue drains"
            ),
            ServiceError::Rejected(m) => write!(f, "daemon rejected the request: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Everything the `rsr` binary can fail with: bad arguments, a
/// simulation error, a job-service failure, or a job the daemon ran and
/// reported failed. Simulator and functional-core errors convert via
/// `From`, so driver code uses plain `?`.
#[derive(Clone, Debug, PartialEq)]
pub enum CliError {
    /// Argument parsing or validation failed.
    Usage(UsageError),
    /// The simulation itself failed.
    Sim(SimError),
    /// The job service failed (exit code 8) — distinct from a job that
    /// ran and failed, which keeps its engine exit class.
    Service(ServiceError),
    /// The daemon ran the job and it failed; the typed wire class maps
    /// back onto the engine exit codes (deadline 7, shard/panic 6, …).
    Job {
        /// The daemon's failure class.
        class: FailClass,
        /// The underlying error message.
        message: String,
        /// Supervised attempts consumed.
        attempts: u32,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(e) => write!(f, "{e}"),
            CliError::Sim(e) => write!(f, "{e}"),
            CliError::Service(e) => write!(f, "{e}"),
            CliError::Job { class, message, attempts } => write!(
                f,
                "job failed ({}, {attempts} attempt{}): {message}",
                class.as_str(),
                if *attempts == 1 { "" } else { "s" }
            ),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Usage(e) => Some(e),
            CliError::Sim(e) => Some(e),
            CliError::Service(e) => Some(e),
            CliError::Job { .. } => None,
        }
    }
}

impl CliError {
    /// The process exit code for this error's class, so scripts can
    /// distinguish operator mistakes from workload problems from
    /// infrastructure faults without scraping stderr:
    ///
    /// | code | class |
    /// |------|-------|
    /// | 2 | usage / argument error |
    /// | 3 | program load failure |
    /// | 4 | execution fault |
    /// | 5 | degenerate run spec |
    /// | 6 | shard fault (lost/panicked worker, corrupt checkpoint) |
    /// | 7 | deadline exceeded |
    /// | 8 | service error (daemon unreachable, overloaded, draining) |
    /// | 1 | anything else |
    ///
    /// A job the daemon ran and reported failed keeps its engine class
    /// (a remote deadline still exits 7, a supervised panic 6, a
    /// degenerate spec 5) — only failures *of the service* exit 8.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Sim(SimError::Load(_)) => 3,
            CliError::Sim(SimError::Exec(_)) => 4,
            CliError::Sim(SimError::Spec(_)) => 5,
            CliError::Sim(e) if e.is_shard_fault() || matches!(e, SimError::ShardFailed { .. }) => {
                6
            }
            CliError::Sim(SimError::DeadlineExceeded { .. }) => 7,
            CliError::Sim(_) => 1,
            CliError::Service(_) => 8,
            CliError::Job { class, .. } => match class {
                FailClass::Deadline => 7,
                FailClass::Panic | FailClass::Shard => 6,
                FailClass::Spec => 5,
                FailClass::Sim => 1,
            },
        }
    }
}

impl From<UsageError> for CliError {
    fn from(e: UsageError) -> Self {
        CliError::Usage(e)
    }
}

impl From<SimError> for CliError {
    fn from(e: SimError) -> Self {
        CliError::Sim(e)
    }
}

impl From<LoadError> for CliError {
    fn from(e: LoadError) -> Self {
        CliError::Sim(SimError::from(e))
    }
}

impl From<ExecError> for CliError {
    fn from(e: ExecError) -> Self {
        CliError::Sim(SimError::from(e))
    }
}

/// The top-level usage text.
pub const USAGE: &str = "\
usage: rsr <command> [args]

commands:
  list                          benchmarks and default regimens
  disasm <bench> [--head N]     disassemble a generated workload (default 32)
  trace  <bench> [-n N]         print the first N retired instructions (default 20)
  run    <bench> [-n INSTS]     full cycle-accurate run (default 1000000)
  sample <bench> [--policy P] [--pct N] [--clusters N] [--len N] [-n INSTS] [--seed S]
         [--threads T] [--pipeline-depth D] [--recon-threads R] [--max-shard-retries R]
         [--log-budget BYTES] [--deadline-secs S]
                                sampled simulation (defaults: r$bp 20%, 30x1000, 2M, seed 42,
                                1 thread; --threads shards the schedule, results identical;
                                --pipeline-depth overlaps cold fast-forward with recon+hot
                                inside each shard, 0 = auto, results identical at any depth;
                                --recon-threads parallelizes reverse cache reconstruction
                                over set partitions, 0 = auto, results identical at any count;
                                retries heal shard faults, --log-budget degrades over-budget
                                clusters to stale-state warmup, --deadline-secs aborts cleanly)
  sweep  <bench> [--configs N] [--policy P] [--pct N] [--clusters N] [--len N] [-n INSTS]
         [--seed S] [--threads T] [--recon-threads R] [--replay-threads W] [--out PATH]
                                design-space sweep: one functional cold pass fanned
                                across N machine variants (L1D capacity x gshare history
                                grid around the paper geometry); emits one JSON row per
                                config (est_ipc, 95% CI, per-structure recon telemetry,
                                shared amortization ratio) to PATH or stdout (defaults:
                                8 configs, r$bp 20%, 30x1000, 2M, seed 42, 1 thread;
                                --replay-threads replays W configs concurrently per
                                captured window, 0 = auto; per-config results are
                                bit-identical to standalone runs at any worker count)
  bench  [--scale S] [--seed N] [--threads T] [--pipeline-depth D] [--recon-threads R]
         [--replay-threads W] [--sweep-configs N] [--sweep-smoke] [--serve-smoke] [--out PATH]
                                reproducible perf trajectory: runs mcf under r$bp 20%
                                and emits BENCH_sample.json-shaped metrics (cold-phase
                                MIPS, recon ns/record per structure, peak log bytes, wall
                                seconds) to PATH or stdout (defaults: scale 1.0, seed 42,
                                1 thread; default depth 0 emits a [depth-1, auto] array;
                                --sweep-configs N appends a sweep row fanning N configs
                                out of one cold pass, --sweep-smoke = 4-config shorthand;
                                --serve-smoke appends a service row: an in-process daemon
                                round-trip measuring cold-vs-cached latency and hit rate)
  serve  [--cache DIR] [--addr A] [--workers N] [--queue-depth N] [--max-job-retries R]
         [--default-deadline-secs S] [--scale S]
                                job daemon over localhost TCP: schedules submitted sampled
                                runs across the core budget, dedupes identical in-flight
                                specs, supervises each job (panic/shard-fault retries with
                                deterministic backoff, per-job deadlines, load shedding),
                                and answers repeat submissions bit-identically from a
                                crash-safe content-addressed result cache; a kill mid-queue
                                resumes from the journal on restart, and `rsr submit
                                --drain` stops it cleanly (defaults: cache .rsr-cache,
                                127.0.0.1:7411, auto workers, queue depth 16, 1 retry)
  submit <bench> [--addr A] [--policy P] [--pct N] [--clusters N] [--len N] [-n INSTS]
         [--seed S] [--l1d-kb K] [--ghr-bits B] [--shard-span S] [--log-budget BYTES]
         [--deadline-ms MS] [--no-wait]
  submit --stats | submit --drain [--addr A]
                                submit one sampled run to a daemon and print the result
                                (computed | cache_hit | recomputed), queue without waiting,
                                read the daemon's counters, or drain it to a clean stop
                                (job defaults match `rsr sample`; --l1d-kb/--ghr-bits
                                override the paper machine geometry)
  simpoint <bench> [--interval I] [--k K] [--warm] [-n INSTS]
                                SimPoint analysis + simulation
  ckpt   <bench> [--clusters N] [--len N] [-n INSTS] [--replays R]
                                build a live-points library and replay it

policies: none | fp | s$ | sbp | s$bp | r$ | rbp | r$bp | mrrl | blrl
benchmarks: ammp art gcc mcf parser perl twolf vortex vpr
exit codes: 0 ok | 1 other | 2 usage | 3 load | 4 exec | 5 spec | 6 shard fault | 7 deadline
            8 service (daemon unreachable, overloaded, or draining)";

/// Parses a warm-up policy name plus an optional percentage.
pub fn parse_policy(name: &str, pct: u8) -> Result<WarmupPolicy, UsageError> {
    let p = Pct::new(pct.clamp(1, 100));
    Ok(match name.to_ascii_lowercase().as_str() {
        "none" => WarmupPolicy::None,
        "fp" => WarmupPolicy::FixedPeriod { pct: p },
        "s$" => WarmupPolicy::Smarts { cache: true, bp: false },
        "sbp" => WarmupPolicy::Smarts { cache: false, bp: true },
        "smarts" | "s$bp" => WarmupPolicy::Smarts { cache: true, bp: true },
        "r$" => WarmupPolicy::Reverse { cache: true, bp: false, pct: p },
        "rbp" => WarmupPolicy::Reverse { cache: false, bp: true, pct: p },
        "rsr" | "r$bp" => WarmupPolicy::Reverse { cache: true, bp: true, pct: p },
        "mrrl" => WarmupPolicy::Mrrl { coverage: p },
        "blrl" => WarmupPolicy::Blrl { coverage: p },
        other => return Err(UsageError(format!("unknown policy `{other}`"))),
    })
}

fn parse_bench(name: Option<&String>) -> Result<Benchmark, UsageError> {
    let name = name.ok_or_else(|| UsageError("missing benchmark name".into()))?;
    Benchmark::from_name(name).ok_or_else(|| UsageError(format!("unknown benchmark `{name}`")))
}

struct Flags<'a> {
    args: &'a [String],
}

impl Flags<'_> {
    fn value(&self, flag: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.args.get(i + 1))
            .map(|s| s.as_str())
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, UsageError> {
        match self.value(flag) {
            None if self.present(flag) => Err(UsageError(format!("missing value for {flag}"))),
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| UsageError(format!("bad value `{v}` for {flag}"))),
        }
    }

    fn parsed_opt<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, UsageError> {
        match self.value(flag) {
            None if self.present(flag) => Err(UsageError(format!("missing value for {flag}"))),
            None => Ok(None),
            Some(v) => {
                v.parse().map(Some).map_err(|_| UsageError(format!("bad value `{v}` for {flag}")))
            }
        }
    }

    fn string(&self, flag: &str, default: &str) -> Result<String, UsageError> {
        match self.value(flag) {
            None if self.present(flag) => Err(UsageError(format!("missing value for {flag}"))),
            None => Ok(default.to_string()),
            Some(v) => Ok(v.to_string()),
        }
    }

    fn present(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }
}

/// Rejects zero where the downstream constructor's contract demands a
/// positive value (`SamplingRegimen::new`, BBV intervals, k-means k), so
/// the binary fails with a usage error instead of a panic.
fn nonzero<T: PartialEq + From<u8>>(value: T, flag: &str) -> Result<T, UsageError> {
    if value == T::from(0) {
        Err(UsageError(format!("{flag} must be at least 1")))
    } else {
        Ok(value)
    }
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// Returns [`UsageError`] for unknown commands, benchmarks, policies, or
/// malformed values.
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    let cmd = args.first().ok_or_else(|| UsageError(USAGE.into()))?;
    let rest = &args[1..];
    let flags = Flags { args: rest };
    Ok(match cmd.as_str() {
        "list" => Command::List,
        "disasm" => {
            Command::Disasm { bench: parse_bench(rest.first())?, head: flags.parsed("--head", 32)? }
        }
        "trace" => Command::Trace { bench: parse_bench(rest.first())?, n: flags.parsed("-n", 20)? },
        "run" => {
            Command::Run { bench: parse_bench(rest.first())?, n: flags.parsed("-n", 1_000_000)? }
        }
        "sample" => {
            let pct: u8 = flags.parsed("--pct", 20)?;
            let policy_name = match flags.value("--policy") {
                None if flags.present("--policy") => {
                    return Err(UsageError("missing value for --policy".into()))
                }
                name => name.unwrap_or("r$bp"),
            };
            Command::Sample {
                bench: parse_bench(rest.first())?,
                policy: parse_policy(policy_name, pct)?,
                clusters: nonzero(flags.parsed("--clusters", 30)?, "--clusters")?,
                len: nonzero(flags.parsed("--len", 1000)?, "--len")?,
                n: flags.parsed("-n", 2_000_000)?,
                seed: flags.parsed("--seed", 42)?,
                threads: flags.parsed("--threads", 1)?,
                pipeline_depth: flags.parsed("--pipeline-depth", 0)?,
                recon_threads: flags.parsed("--recon-threads", 0)?,
                max_shard_retries: flags.parsed_opt("--max-shard-retries")?,
                log_budget: flags.parsed_opt("--log-budget")?,
                deadline_secs: flags.parsed_opt("--deadline-secs")?,
            }
        }
        "sweep" => {
            let pct: u8 = flags.parsed("--pct", 20)?;
            let policy_name = match flags.value("--policy") {
                None if flags.present("--policy") => {
                    return Err(UsageError("missing value for --policy".into()))
                }
                name => name.unwrap_or("r$bp"),
            };
            Command::Sweep {
                bench: parse_bench(rest.first())?,
                configs: nonzero(flags.parsed("--configs", 8)?, "--configs")?,
                policy: parse_policy(policy_name, pct)?,
                clusters: nonzero(flags.parsed("--clusters", 30)?, "--clusters")?,
                len: nonzero(flags.parsed("--len", 1000)?, "--len")?,
                n: flags.parsed("-n", 2_000_000)?,
                seed: flags.parsed("--seed", 42)?,
                threads: flags.parsed("--threads", 1)?,
                recon_threads: flags.parsed("--recon-threads", 0)?,
                replay_threads: flags.parsed("--replay-threads", 0)?,
                out: flags.value("--out").map(str::to_string),
            }
        }
        "bench" => Command::Bench {
            scale: flags.parsed("--scale", 1.0)?,
            seed: flags.parsed("--seed", 42)?,
            threads: flags.parsed("--threads", 1)?,
            pipeline_depth: flags.parsed("--pipeline-depth", 0)?,
            recon_threads: flags.parsed("--recon-threads", 0)?,
            replay_threads: flags.parsed("--replay-threads", 0)?,
            sweep_configs: flags.parsed("--sweep-configs", 0)?,
            sweep_smoke: flags.present("--sweep-smoke"),
            serve_smoke: flags.present("--serve-smoke"),
            out: flags.value("--out").map(str::to_string),
        },
        "ckpt" => Command::Ckpt {
            bench: parse_bench(rest.first())?,
            clusters: nonzero(flags.parsed("--clusters", 20)?, "--clusters")?,
            len: nonzero(flags.parsed("--len", 1000)?, "--len")?,
            n: flags.parsed("-n", 2_000_000)?,
            replays: flags.parsed("--replays", 3)?,
        },
        "serve" => Command::Serve {
            cache_dir: flags.string("--cache", ".rsr-cache")?,
            addr: flags.string("--addr", DEFAULT_SERVE_ADDR)?,
            workers: flags.parsed("--workers", 0)?,
            queue_depth: flags.parsed("--queue-depth", 16)?,
            max_job_retries: flags.parsed("--max-job-retries", 1)?,
            deadline_secs: flags.parsed_opt("--default-deadline-secs")?,
            scale: flags.parsed("--scale", 1.0)?,
        },
        "submit" => {
            let addr = flags.string("--addr", DEFAULT_SERVE_ADDR)?;
            let action = if flags.present("--stats") {
                SubmitAction::Stats
            } else if flags.present("--drain") {
                SubmitAction::Drain
            } else {
                let pct: u8 = flags.parsed("--pct", 20)?;
                let policy_name = match flags.value("--policy") {
                    None if flags.present("--policy") => {
                        return Err(UsageError("missing value for --policy".into()))
                    }
                    name => name.unwrap_or("r$bp"),
                };
                SubmitAction::Job {
                    bench: parse_bench(rest.first())?,
                    policy: parse_policy(policy_name, pct)?,
                    clusters: nonzero(flags.parsed("--clusters", 30)?, "--clusters")?,
                    len: nonzero(flags.parsed("--len", 1000)?, "--len")?,
                    n: flags.parsed("-n", 2_000_000)?,
                    seed: flags.parsed("--seed", 42)?,
                    l1d_kb: flags.parsed_opt("--l1d-kb")?,
                    ghr_bits: flags.parsed_opt("--ghr-bits")?,
                    shard_span: flags.parsed_opt("--shard-span")?,
                    log_budget: flags.parsed_opt("--log-budget")?,
                    deadline_ms: flags.parsed_opt("--deadline-ms")?,
                    no_wait: flags.present("--no-wait"),
                }
            };
            Command::Submit { addr, action }
        }
        "simpoint" => Command::Simpoint {
            bench: parse_bench(rest.first())?,
            interval: nonzero(flags.parsed("--interval", 10_000)?, "--interval")?,
            k: nonzero(flags.parsed("--k", 10)?, "--k")?,
            warm: flags.present("--warm"),
            n: flags.parsed("-n", 2_000_000)?,
        },
        "-h" | "--help" | "help" => return Err(UsageError(USAGE.into())),
        other => return Err(UsageError(format!("unknown command `{other}`\n\n{USAGE}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    #[test]
    fn parses_list() {
        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
    }

    #[test]
    fn parses_sample_with_flags() {
        let cmd = parse(&argv(
            "sample mcf --policy r$ --pct 40 --clusters 12 --len 500 -n 100000 --seed 7 --threads 4",
        ))
        .unwrap();
        match cmd {
            Command::Sample { bench, policy, clusters, len, n, seed, threads, .. } => {
                assert_eq!(bench, Benchmark::Mcf);
                assert_eq!(
                    policy,
                    WarmupPolicy::Reverse { cache: true, bp: false, pct: Pct::new(40) }
                );
                assert_eq!((clusters, len, n, seed, threads), (12, 500, 100_000, 7, 4));
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn parses_guard_flags() {
        let cmd =
            parse(&argv("sample mcf --max-shard-retries 3 --log-budget 65536 --deadline-secs 90"))
                .unwrap();
        match cmd {
            Command::Sample { max_shard_retries, log_budget, deadline_secs, .. } => {
                assert_eq!(max_shard_retries, Some(3));
                assert_eq!(log_budget, Some(65_536));
                assert_eq!(deadline_secs, Some(90));
            }
            other => panic!("parsed {other:?}"),
        }
        let e = parse(&argv("sample mcf --log-budget lots")).unwrap_err();
        assert!(e.0.contains("bad value"));
        let e = parse(&argv("sample mcf --deadline-secs")).unwrap_err();
        assert!(e.0.contains("missing value"));
    }

    #[test]
    fn zero_dimensions_are_usage_errors_not_panics() {
        for cmdline in [
            "sample mcf --clusters 0",
            "sample mcf --len 0",
            "ckpt twolf --clusters 0",
            "ckpt twolf --len 0",
            "simpoint gcc --interval 0",
            "simpoint gcc --k 0",
        ] {
            let e = parse(&argv(cmdline)).unwrap_err();
            assert!(e.0.contains("must be at least 1"), "{cmdline}: got `{e}`");
        }
    }

    #[test]
    fn exit_codes_partition_error_classes() {
        let usage = CliError::from(UsageError("nope".into()));
        assert_eq!(usage.exit_code(), 2);
        let load = LoadError { addr: 0, cause: rsr_isa::DecodeError { word: 0 } };
        assert_eq!(CliError::from(SimError::Load(load)).exit_code(), 3);
        assert_eq!(CliError::from(SimError::Exec(ExecError::Halted)).exit_code(), 4);
        assert_eq!(CliError::from(SimError::Spec("bad")).exit_code(), 5);
        assert_eq!(CliError::from(SimError::Shard { index: 1 }).exit_code(), 6);
        assert_eq!(
            CliError::from(SimError::ShardPanicked { index: 2, message: "boom".into() })
                .exit_code(),
            6
        );
        assert_eq!(
            CliError::from(SimError::CheckpointCorrupt { index: 1, expected: 1, found: 2 })
                .exit_code(),
            6
        );
        assert_eq!(
            CliError::from(SimError::ShardFailed {
                index: 0,
                source: Box::new(SimError::Spec("inner")),
            })
            .exit_code(),
            6
        );
        assert_eq!(
            CliError::from(SimError::DeadlineExceeded { completed_shards: 1, total_shards: 4 })
                .exit_code(),
            7
        );
    }

    #[test]
    fn defaults_apply() {
        let cmd = parse(&argv("sample gcc")).unwrap();
        match cmd {
            Command::Sample {
                policy,
                clusters,
                len,
                n,
                seed,
                threads,
                max_shard_retries,
                log_budget,
                deadline_secs,
                ..
            } => {
                assert_eq!(
                    policy,
                    WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) }
                );
                assert_eq!((clusters, len, n, seed, threads), (30, 1000, 2_000_000, 42, 1));
                assert_eq!((max_shard_retries, log_budget, deadline_secs), (None, None, None));
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn cli_error_converts_from_sim_and_func_errors() {
        let sim = SimError::Spec("bad spec");
        assert_eq!(CliError::from(sim.clone()), CliError::Sim(sim.clone()));
        let exec = CliError::from(ExecError::Halted);
        assert_eq!(exec, CliError::Sim(SimError::Exec(ExecError::Halted)));
        let usage = CliError::from(UsageError("nope".into()));
        assert!(matches!(usage, CliError::Usage(_)));
        // Display passes the inner message through.
        assert_eq!(CliError::from(sim.clone()).to_string(), sim.to_string());
    }

    #[test]
    fn all_policy_names_parse() {
        for name in ["none", "fp", "s$", "sbp", "s$bp", "r$", "rbp", "r$bp", "mrrl", "blrl"] {
            assert!(parse_policy(name, 20).is_ok(), "{name}");
        }
        assert!(parse_policy("bogus", 20).is_err());
    }

    #[test]
    fn errors_are_helpful() {
        let e = parse(&argv("frobnicate")).unwrap_err();
        assert!(e.0.contains("unknown command"));
        let e = parse(&argv("run nosuch")).unwrap_err();
        assert!(e.0.contains("unknown benchmark"));
        let e = parse(&argv("run gcc -n notanumber")).unwrap_err();
        assert!(e.0.contains("bad value"));
        let e = parse(&argv("")).unwrap_err();
        assert!(e.0.contains("usage"));
    }

    #[test]
    fn bench_flags_and_defaults() {
        assert_eq!(
            parse(&argv("bench")).unwrap(),
            Command::Bench {
                scale: 1.0,
                seed: 42,
                threads: 1,
                pipeline_depth: 0,
                recon_threads: 0,
                replay_threads: 0,
                sweep_configs: 0,
                sweep_smoke: false,
                serve_smoke: false,
                out: None
            }
        );
        assert_eq!(
            parse(&argv(
                "bench --scale 0.05 --seed 7 --threads 4 --pipeline-depth 2 --recon-threads 4 \
                 --replay-threads 2 --sweep-configs 20 --out BENCH_sample.json"
            ))
            .unwrap(),
            Command::Bench {
                scale: 0.05,
                seed: 7,
                threads: 4,
                pipeline_depth: 2,
                recon_threads: 4,
                replay_threads: 2,
                sweep_configs: 20,
                sweep_smoke: false,
                serve_smoke: false,
                out: Some("BENCH_sample.json".into())
            }
        );
        match parse(&argv("bench --sweep-smoke --serve-smoke")).unwrap() {
            Command::Bench { sweep_smoke, serve_smoke, sweep_configs, .. } => {
                assert!(sweep_smoke);
                assert!(serve_smoke);
                assert_eq!(sweep_configs, 0);
            }
            other => panic!("parsed {other:?}"),
        }
        let e = parse(&argv("bench --scale big")).unwrap_err();
        assert!(e.0.contains("bad value"));
    }

    #[test]
    fn sweep_flags_and_defaults() {
        match parse(&argv("sweep mcf")).unwrap() {
            Command::Sweep {
                bench, configs, policy, clusters, len, n, seed, threads, out, ..
            } => {
                assert_eq!(bench, Benchmark::Mcf);
                assert_eq!(configs, 8);
                assert_eq!(
                    policy,
                    WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) }
                );
                assert_eq!((clusters, len, n, seed, threads), (30, 1000, 2_000_000, 42, 1));
                assert_eq!(out, None);
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv(
            "sweep twolf --configs 20 --policy r$ --pct 40 --clusters 12 --len 500 -n 100000 \
             --seed 7 --threads 4 --recon-threads 2 --replay-threads 4 --out rows.json",
        ))
        .unwrap()
        {
            Command::Sweep {
                bench, configs, policy, recon_threads, replay_threads, out, ..
            } => {
                assert_eq!(bench, Benchmark::Twolf);
                assert_eq!(configs, 20);
                assert_eq!(
                    policy,
                    WarmupPolicy::Reverse { cache: true, bp: false, pct: Pct::new(40) }
                );
                assert_eq!(recon_threads, 2);
                assert_eq!(replay_threads, 4);
                assert_eq!(out, Some("rows.json".into()));
            }
            other => panic!("parsed {other:?}"),
        }
        let e = parse(&argv("sweep mcf --configs 0")).unwrap_err();
        assert!(e.0.contains("must be at least 1"));
        let e = parse(&argv("sweep")).unwrap_err();
        assert!(e.0.contains("missing benchmark"));
    }

    #[test]
    fn pipeline_depth_flag_parses_and_defaults_to_auto() {
        match parse(&argv("sample mcf --pipeline-depth 4")).unwrap() {
            Command::Sample { pipeline_depth, .. } => assert_eq!(pipeline_depth, 4),
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("sample mcf")).unwrap() {
            Command::Sample { pipeline_depth, .. } => assert_eq!(pipeline_depth, 0, "0 = auto"),
            other => panic!("parsed {other:?}"),
        }
        let e = parse(&argv("sample mcf --pipeline-depth deep")).unwrap_err();
        assert!(e.0.contains("bad value"));
    }

    #[test]
    fn recon_threads_flag_parses_and_defaults_to_auto() {
        match parse(&argv("sample mcf --recon-threads 4")).unwrap() {
            Command::Sample { recon_threads, .. } => assert_eq!(recon_threads, 4),
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("sample mcf")).unwrap() {
            Command::Sample { recon_threads, .. } => assert_eq!(recon_threads, 0, "0 = auto"),
            other => panic!("parsed {other:?}"),
        }
        let e = parse(&argv("sample mcf --recon-threads many")).unwrap_err();
        assert!(e.0.contains("bad value"));
    }

    #[test]
    fn replay_threads_flag_parses_and_defaults_to_auto() {
        match parse(&argv("sweep mcf --replay-threads 4")).unwrap() {
            Command::Sweep { replay_threads, .. } => assert_eq!(replay_threads, 4),
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("sweep mcf")).unwrap() {
            Command::Sweep { replay_threads, .. } => assert_eq!(replay_threads, 0, "0 = auto"),
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("bench")).unwrap() {
            Command::Bench { replay_threads, .. } => assert_eq!(replay_threads, 0, "0 = auto"),
            other => panic!("parsed {other:?}"),
        }
        let e = parse(&argv("sweep mcf --replay-threads wide")).unwrap_err();
        assert!(e.0.contains("bad value"));
    }

    #[test]
    fn serve_flags_and_defaults() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve {
                cache_dir: ".rsr-cache".into(),
                addr: DEFAULT_SERVE_ADDR.into(),
                workers: 0,
                queue_depth: 16,
                max_job_retries: 1,
                deadline_secs: None,
                scale: 1.0,
            }
        );
        assert_eq!(
            parse(&argv(
                "serve --cache /tmp/c --addr 127.0.0.1:0 --workers 2 --queue-depth 4 \
                 --max-job-retries 0 --default-deadline-secs 30 --scale 0.1"
            ))
            .unwrap(),
            Command::Serve {
                cache_dir: "/tmp/c".into(),
                addr: "127.0.0.1:0".into(),
                workers: 2,
                queue_depth: 4,
                max_job_retries: 0,
                deadline_secs: Some(30),
                scale: 0.1,
            }
        );
        let e = parse(&argv("serve --cache")).unwrap_err();
        assert!(e.0.contains("missing value"));
    }

    #[test]
    fn submit_job_stats_and_drain_parse() {
        match parse(&argv("submit mcf --l1d-kb 64 --ghr-bits 14 --deadline-ms 500 --no-wait"))
            .unwrap()
        {
            Command::Submit { addr, action } => {
                assert_eq!(addr, DEFAULT_SERVE_ADDR);
                match action {
                    SubmitAction::Job {
                        bench,
                        l1d_kb,
                        ghr_bits,
                        deadline_ms,
                        no_wait,
                        clusters,
                        len,
                        ..
                    } => {
                        assert_eq!(bench, Benchmark::Mcf);
                        assert_eq!(
                            (l1d_kb, ghr_bits, deadline_ms),
                            (Some(64), Some(14), Some(500))
                        );
                        assert!(no_wait);
                        assert_eq!((clusters, len), (30, 1000), "job defaults match `rsr sample`");
                    }
                    other => panic!("parsed {other:?}"),
                }
            }
            other => panic!("parsed {other:?}"),
        }
        assert_eq!(
            parse(&argv("submit --stats --addr 127.0.0.1:9999")).unwrap(),
            Command::Submit { addr: "127.0.0.1:9999".into(), action: SubmitAction::Stats }
        );
        assert_eq!(
            parse(&argv("submit --drain")).unwrap(),
            Command::Submit { addr: DEFAULT_SERVE_ADDR.into(), action: SubmitAction::Drain }
        );
        let e = parse(&argv("submit")).unwrap_err();
        assert!(e.0.contains("missing benchmark"));
        let e = parse(&argv("submit mcf --clusters 0")).unwrap_err();
        assert!(e.0.contains("must be at least 1"));
    }

    #[test]
    fn service_errors_exit_8_but_job_failures_keep_engine_classes() {
        let unavailable = CliError::Service(ServiceError::Unavailable("refused".into()));
        assert_eq!(unavailable.exit_code(), 8);
        let overloaded = CliError::Service(ServiceError::Overloaded { inflight: 5, limit: 4 });
        assert_eq!(overloaded.exit_code(), 8);
        assert!(overloaded.to_string().contains("overloaded"));
        assert_eq!(CliError::Service(ServiceError::Rejected("draining".into())).exit_code(), 8);
        // A job the daemon ran and reported failed keeps the engine class.
        let job = |class| CliError::Job { class, message: "m".into(), attempts: 2 };
        assert_eq!(job(FailClass::Deadline).exit_code(), 7);
        assert_eq!(job(FailClass::Panic).exit_code(), 6);
        assert_eq!(job(FailClass::Shard).exit_code(), 6);
        assert_eq!(job(FailClass::Spec).exit_code(), 5);
        assert_eq!(job(FailClass::Sim).exit_code(), 1);
        assert!(job(FailClass::Panic).to_string().contains("panic"));
    }

    #[test]
    fn ckpt_defaults() {
        let cmd = parse(&argv("ckpt vortex")).unwrap();
        assert_eq!(
            cmd,
            Command::Ckpt {
                bench: Benchmark::Vortex,
                clusters: 20,
                len: 1000,
                n: 2_000_000,
                replays: 3
            }
        );
    }

    #[test]
    fn simpoint_flags() {
        let cmd = parse(&argv("simpoint perl --interval 5000 --k 4 --warm")).unwrap();
        assert_eq!(
            cmd,
            Command::Simpoint {
                bench: Benchmark::Perl,
                interval: 5000,
                k: 4,
                warm: true,
                n: 2_000_000
            }
        );
    }
}
