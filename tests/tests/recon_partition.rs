//! Set-partitioned reconstruction-index equivalence: the index-driven
//! reverse scan (`reconstruct_caches_partitioned`, and the indexed
//! `BpReconstructor` fast path) must be bit-identical to the sequential
//! full reverse scan — same `ReconStats`, same cache contents in MRU
//! order, same reconstructed predictor state — for arbitrary record
//! streams, including ext-spill records, over-budget truncated logs, and
//! logs mutated after sealing, at every reconstruction worker count.

use proptest::prelude::*;
use rsr_branch::{PredCtrlKind, Predictor};
use rsr_cache::MemHierarchy;
use rsr_core::{
    reconstruct_caches, reconstruct_caches_partitioned, BpReconstructor, MachineConfig, Pct,
    ReconGeometry, RunSpec, SampleOutcome, SamplingRegimen, SkipLog, WarmupPolicy,
};
use rsr_func::{BranchRec, Cpu, MemAccess, Retired};
use rsr_integration::{machine, tiny};
use rsr_isa::{CtrlKind, Inst, MemWidth, Op};
use rsr_workloads::Benchmark;

/// Every set's MRU-ordered tags at every level — the full observable cache
/// state a reconstruction pass produces.
fn all_set_tags(hier: &MemHierarchy) -> Vec<Vec<u64>> {
    let mut tags = Vec::new();
    for cache in [&hier.l1i, &hier.l1d, &hier.l2] {
        for set in 0..cache.num_sets() {
            tags.push(cache.set_tags_mru_order(set));
        }
    }
    tags
}

/// Synthesizes an adversarial retired stream from raw words: 64-bit PCs
/// and targets that force ext-spill records, non-sequential next PCs, and
/// every control kind.
fn stream_from_words(words: &[u64]) -> Vec<Retired> {
    let kinds = [
        CtrlKind::CondBranch,
        CtrlKind::Jump,
        CtrlKind::Call,
        CtrlKind::IndirectCall,
        CtrlKind::Return,
        CtrlKind::IndirectJump,
    ];
    words
        .iter()
        .enumerate()
        .map(|(seq, &r)| {
            // 48-bit PCs like real streams (bit 45 forces ext-spill).
            let pc =
                if r % 5 == 0 { (r | (1 << 45)) % (1 << 48) } else { 0x1_0000 + (r % 4096) * 4 };
            let next_pc = if r % 3 == 0 { r.rotate_left(17) } else { pc.wrapping_add(4) };
            let mem = (r % 2 == 0).then(|| MemAccess {
                addr: r.rotate_left(29) % (1 << 48),
                width: MemWidth::B8,
                is_store: r % 4 == 0,
            });
            let branch = (r % 3 == 0).then(|| BranchRec {
                kind: kinds[(r % 6) as usize],
                taken: r % 2 == 0,
                target: r.rotate_left(41) % (1 << 48),
            });
            Retired {
                seq: seq as u64,
                pc,
                next_pc,
                inst: Inst::new(Op::Add, 0, 0, 0, 0),
                mem,
                branch,
            }
        })
        .collect()
}

fn log_from(stream: &[Retired], budget: Option<usize>) -> SkipLog {
    let mut log = SkipLog::new(true, true, 0);
    log.set_budget(budget);
    for r in stream {
        log.record(r);
    }
    log
}

/// A retired stream from a real workload.
fn workload_stream(bench: Benchmark, n: u64) -> Vec<Retired> {
    let program = tiny(bench);
    let mut cpu = Cpu::new(&program).unwrap();
    (0..n).map(|_| cpu.step().unwrap()).collect()
}

/// Asserts that sealing the log and walking its per-set chains — at 1 and
/// 4 reconstruction workers — reproduces the sequential full scan exactly.
fn assert_cache_equivalence(machine: &MachineConfig, log: &SkipLog, pct: Pct, what: &str) {
    let mut sealed = log.clone();
    sealed.seal_mem_index(&ReconGeometry::of_machine(machine));
    let mut ref_hier = MemHierarchy::new(machine.hier.clone());
    let ref_stats = reconstruct_caches(&mut ref_hier, log, pct);
    let ref_tags = all_set_tags(&ref_hier);
    for recon_threads in [1usize, 4] {
        let mut hier = MemHierarchy::new(machine.hier.clone());
        let (stats, _) = reconstruct_caches_partitioned(&mut hier, &sealed, pct, recon_threads);
        assert_eq!(stats, ref_stats, "{what}: ReconStats at {recon_threads} workers, {pct:?}");
        assert_eq!(
            all_set_tags(&hier),
            ref_tags,
            "{what}: cache tags at {recon_threads} workers, {pct:?}"
        );
    }
}

/// Asserts that the indexed branch-predictor reconstruction (sealed
/// pht-key column + final GHR) matches the legacy forward-pass path on
/// every observable: stats, GHR, full PHT contents, and BTB targets.
fn assert_bp_equivalence(machine: &MachineConfig, log: &SkipLog, pct: Pct, what: &str) {
    let mut sealed = log.clone();
    sealed.seal_branch_index(&ReconGeometry::of_machine(machine), pct);

    let mut ref_pred = Predictor::new(machine.pred);
    let mut ref_bp = BpReconstructor::new(&mut ref_pred, log, pct);
    ref_bp.exhaust(&mut ref_pred);

    let mut pred = Predictor::new(machine.pred);
    let mut bp = BpReconstructor::new(&mut pred, &sealed, pct);
    bp.exhaust(&mut pred);

    assert_eq!(bp.stats(), ref_bp.stats(), "{what}: BP ReconStats, {pct:?}");
    assert_eq!(pred.gshare.ghr(), ref_pred.gshare.ghr(), "{what}: GHR, {pct:?}");
    for i in 0..pred.gshare.num_entries() {
        assert_eq!(
            pred.gshare.counter_at(i),
            ref_pred.gshare.counter_at(i),
            "{what}: PHT entry {i}, {pct:?}"
        );
    }
    for i in 0..pred.btb.num_entries() {
        let pc = (i as u64) << 2;
        assert_eq!(pred.btb.peek(pc), ref_pred.btb.peek(pc), "{what}: BTB entry {i}, {pct:?}");
    }
}

/// Asserts that the *demand-driven* indexed scan — hot-worklist hops,
/// sealed flush last-writer bits, mid-sequence exhaustion flush — matches
/// the legacy per-record demand scan on every observable. This is the
/// path the sampler actually exercises; `exhaust` above shares the flush
/// but not the scan loop, so only a demand sequence pins the sealed
/// `BR_F_PHT_FLUSH_LW` placement (which feed survives to the flush, and
/// relative to which budget window) against the incremental reference.
fn assert_bp_demand_equivalence(
    machine: &MachineConfig,
    log: &SkipLog,
    stream: &[Retired],
    pct: Pct,
    what: &str,
) {
    use rsr_timing::PredictHook as _;
    let mut sealed = log.clone();
    sealed.seal_branch_index(&ReconGeometry::of_machine(machine), pct);

    // Forward replay of the region's own branch PCs: the demands the
    // detailed cluster would actually issue, in order, against both scan
    // paths. (Only `before_predict` runs — the GHR stays at its
    // reconstructed value, identically on both sides.)
    let to_pred_kind = |k: CtrlKind| match k {
        CtrlKind::CondBranch => PredCtrlKind::CondBranch,
        CtrlKind::Jump => PredCtrlKind::Jump,
        CtrlKind::Call => PredCtrlKind::Call,
        CtrlKind::IndirectCall => PredCtrlKind::IndirectCall,
        CtrlKind::Return => PredCtrlKind::Return,
        CtrlKind::IndirectJump => PredCtrlKind::IndirectJump,
    };
    let probes: Vec<_> = stream
        .iter()
        .filter_map(|r| r.branch.as_ref().map(|b| (r.pc, to_pred_kind(b.kind))))
        .collect();

    let mut ref_pred = Predictor::new(machine.pred);
    let mut ref_bp = BpReconstructor::new(&mut ref_pred, log, pct);
    for &(pc, kind) in &probes {
        ref_bp.before_predict(&mut ref_pred, pc, kind);
    }

    let mut pred = Predictor::new(machine.pred);
    let mut bp = BpReconstructor::new(&mut pred, &sealed, pct);
    for &(pc, kind) in &probes {
        bp.before_predict(&mut pred, pc, kind);
    }

    assert_eq!(bp.stats(), ref_bp.stats(), "{what}: demand BP ReconStats, {pct:?}");
    assert_eq!(pred.gshare.ghr(), ref_pred.gshare.ghr(), "{what}: demand GHR, {pct:?}");
    for i in 0..pred.gshare.num_entries() {
        assert_eq!(
            pred.gshare.counter_at(i),
            ref_pred.gshare.counter_at(i),
            "{what}: demand PHT entry {i}, {pct:?}"
        );
    }
    for i in 0..pred.btb.num_entries() {
        let pc = (i as u64) << 2;
        assert_eq!(
            pred.btb.peek(pc),
            ref_pred.btb.peek(pc),
            "{what}: demand BTB entry {i}, {pct:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary synthetic record streams (ext-spill PCs and targets,
    /// every control kind, random stores) reconstruct bit-identically
    /// through the partitioned index at any worker count and budget.
    #[test]
    fn prop_indexed_recon_matches_full_scan(
        words in proptest::collection::vec(any::<u64>(), 1..400),
        pct_sel in 0usize..3,
    ) {
        let pct = [Pct::new(20), Pct::new(61), Pct::new(100)][pct_sel];
        let stream = stream_from_words(&words);
        let machine = machine();
        let log = log_from(&stream, None);
        assert_cache_equivalence(&machine, &log, pct, "synthetic");
        assert_bp_equivalence(&machine, &log, pct, "synthetic");
        assert_bp_demand_equivalence(&machine, &log, &stream, pct, "synthetic");
    }

    /// Over-budget logs truncate to empty; both paths must agree that
    /// there is nothing to reconstruct.
    #[test]
    fn prop_truncated_logs_stay_equivalent(
        words in proptest::collection::vec(any::<u64>(), 50..300),
    ) {
        let stream = stream_from_words(&words);
        let machine = machine();
        let log = log_from(&stream, Some(64));
        prop_assert!(log.truncated());
        assert_cache_equivalence(&machine, &log, Pct::new(20), "truncated");
        assert_bp_equivalence(&machine, &log, Pct::new(20), "truncated");
    }
}

#[test]
fn workload_streams_reconstruct_identically_with_real_thread_fanout() {
    // Large enough that the 20% budget clears the parallel threshold, so
    // 4 workers genuinely spawn scoped threads over set ranges.
    let machine = machine();
    for bench in [Benchmark::Mcf, Benchmark::Gcc] {
        let stream = workload_stream(bench, 230_000);
        let log = log_from(&stream, None);
        assert!(log.mem_len() > 41_000, "{bench:?}: stream too small to engage threads");
        for pct in [Pct::new(20), Pct::new(100)] {
            assert_cache_equivalence(&machine, &log, pct, bench.name());
            assert_bp_equivalence(&machine, &log, pct, bench.name());
            assert_bp_demand_equivalence(&machine, &log, &stream, pct, bench.name());
        }
    }
}

#[test]
fn stale_seal_falls_back_to_the_full_scan() {
    // Records appended after sealing invalidate the index (sealed lengths
    // no longer match); reconstruction must silently take the sequential
    // path and still agree with the reference.
    let machine = machine();
    let stream = workload_stream(Benchmark::Twolf, 20_000);
    let mut log = log_from(&stream[..15_000], None);
    log.seal_mem_index(&ReconGeometry::of_machine(&machine));
    log.seal_branch_index(&ReconGeometry::of_machine(&machine), Pct::new(20));
    for r in &stream[15_000..] {
        log.record(r);
    }
    let pct = Pct::new(20);
    assert_cache_equivalence(&machine, &log, pct, "stale seal");
    assert_bp_equivalence(&machine, &log, pct, "stale seal");
}

/// Everything deterministic two equivalent runs must agree on (timing
/// telemetry legitimately differs).
fn assert_outcomes_equivalent(a: &SampleOutcome, b: &SampleOutcome, what: &str) {
    assert_eq!(a.clusters.values(), b.clusters.values(), "{what}: IPC clusters");
    assert_eq!(a.cpi_clusters.values(), b.cpi_clusters.values(), "{what}: CPI clusters");
    assert_eq!(a.hot_insts, b.hot_insts, "{what}: hot_insts");
    assert_eq!(a.skipped_insts, b.skipped_insts, "{what}: skipped_insts");
    assert_eq!(a.log_records, b.log_records, "{what}: log_records");
    assert_eq!(a.log_bytes_peak, b.log_bytes_peak, "{what}: log_bytes_peak");
    assert_eq!(a.recon, b.recon, "{what}: recon stats");
    assert_eq!(a.clusters_degraded, b.clusters_degraded, "{what}: clusters_degraded");
}

#[test]
fn sampled_runs_are_bit_identical_across_the_recon_thread_matrix() {
    // The acceptance matrix: (threads, pipeline depth, recon workers) in
    // {1,4} x {1,2} x {1,4} — every combination must reproduce the
    // sequential run's estimate and counters exactly.
    let program = tiny(Benchmark::Twolf);
    let machine = machine();
    let base_spec = RunSpec::new(&program, &machine)
        .regimen(SamplingRegimen::new(12, 600))
        .total_insts(250_000)
        .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) })
        .seed(9)
        .shard_span(20_000);
    let base = base_spec.clone().threads(1).pipeline_depth(1).recon_threads(1).run().unwrap();
    for threads in [1usize, 4] {
        for depth in [1usize, 2] {
            for recon_threads in [1usize, 4] {
                let out = base_spec
                    .clone()
                    .threads(threads)
                    .pipeline_depth(depth)
                    .recon_threads(recon_threads)
                    .run()
                    .unwrap();
                assert_outcomes_equivalent(
                    &base,
                    &out,
                    &format!("threads {threads}, depth {depth}, recon {recon_threads}"),
                );
            }
        }
    }
}
