//! Undo-journal state restore: running a hot window directly on a shared
//! snapshot and reversing its writes must be *bit-identical* to the
//! clone-based restore it replaced (DESIGN.md §16, ROADMAP item 5).
//!
//! Two layers. The functional layer proves `Cpu::begin_journal` /
//! `Cpu::undo_journal` rewinds arbitrary executed windows exactly —
//! integer and floating-point register files (FP compared as raw bits, so
//! NaN payloads and signed zeros count), PC, instruction count, and every
//! resident memory page — including windows that halt mid-flight. The
//! sweep layer proves the two restore strategies the sweep engine
//! actually uses agree end to end: `replay_threads = 1` replays every
//! config on the captured snapshot under a journal, while a fan-out as
//! wide as the config list gives every worker chunk a single config and a
//! private clone (no journaling at all), so comparing the two outcomes is
//! exactly journal-restore vs clone-restore — under log-budget truncation
//! and injected shard faults too.

use proptest::prelude::*;
use rsr_core::{
    ColdSpec, DetailSpec, FaultKind, FaultPlan, Pct, SampleOutcome, SamplingRegimen, SweepOutcome,
    SweepSpec, WarmupPolicy,
};
use rsr_func::{Cpu, PAGE_BYTES};
use rsr_integration::{machine, tiny};
use rsr_isa::{Asm, Freg, Program, Reg};
use rsr_workloads::Benchmark;

/// A random-ish but terminating program that exercises every journaled
/// state family: integer ALU, loads/stores into a private buffer
/// (repeated and page-crossing), FP registers loaded with raw bit
/// patterns (NaNs, signed zeros) plus `fsqrt` of negatives, and forward
/// branches. Wrapped in a bounded counter loop, then halts.
fn build_program(ops: &[u8], iters: u64) -> Program {
    let mut a = Asm::new();
    let buf = a.data_zeros(3 * PAGE_BYTES);
    a.la(Reg::S1, buf);
    a.li(Reg::S0, iters as i64);
    let top = a.bind_new("top");
    for (k, &op) in ops.iter().enumerate() {
        let r1 = Reg(10 + (op % 8));
        let r2 = Reg(10 + (op / 8 % 8));
        match op % 8 {
            0 => {
                a.add(r1, r1, r2);
            }
            1 => {
                a.xori(r1, r2, (op as i32) << 3);
            }
            2 => {
                // Load within the buffer.
                a.andi(Reg::T0, r1, 0x1ff8);
                a.add(Reg::T0, Reg::T0, Reg::S1);
                a.ld(r2, 0, Reg::T0);
            }
            3 => {
                // Store within the buffer — offsets near 0x1000 cross the
                // first page boundary.
                a.andi(Reg::T0, r2, 0x1ff8);
                a.add(Reg::T0, Reg::T0, Reg::S1);
                a.sd(r1, 0, Reg::T0);
            }
            4 => {
                let skip = a.new_label(&format!("s{k}"));
                a.beq(r1, r2, skip);
                a.addi(r1, r1, 1);
                a.bind(skip).unwrap();
            }
            5 => {
                // Raw bit pattern into an FP register: op 0x80 gives a
                // negative, whose sqrt is NaN; op 0 gives +0.0 whose
                // negation-by-bits would be -0.0. Exercises raw-bit
                // restore paths value-compare would miss.
                a.slli(Reg::T1, r1, 56);
                a.fmv_d_x(Freg(op % 32), Reg::T1);
                a.fsqrt(Freg((op / 8) % 32), Freg(op % 32));
            }
            6 => {
                a.mul(r1, r1, r2);
            }
            _ => {
                // FP spill/reload through memory.
                a.andi(Reg::T0, r1, 0xff8);
                a.add(Reg::T0, Reg::T0, Reg::S1);
                a.fsd(Freg(op % 32), 0, Reg::T0);
                a.fld(Freg(op.wrapping_add(1) % 32), 0, Reg::T0);
            }
        }
    }
    a.addi(Reg::S0, Reg::S0, -1);
    a.bne(Reg::S0, Reg::ZERO, top);
    a.halt();
    a.finish().expect("assembles")
}

/// Full bit-level state comparison: architectural registers (FP as raw
/// bits), PC, icount, halt flag, and the content of every page resident
/// in either CPU. Reading a page the other side never touched faults in
/// zeros, so a page that is resident-and-nonzero on one side only fails
/// the comparison — exactly what we want.
fn assert_cpus_bit_identical(a: &mut Cpu, b: &mut Cpu, what: &str) {
    let sa = a.arch_state();
    let sb = b.arch_state();
    assert_eq!(sa.pc, sb.pc, "{what}: pc");
    assert_eq!(sa.icount, sb.icount, "{what}: icount");
    assert_eq!(sa.halted, sb.halted, "{what}: halted");
    assert_eq!(sa.iregs, sb.iregs, "{what}: integer registers");
    for i in 0..32 {
        assert_eq!(
            sa.fregs[i].to_bits(),
            sb.fregs[i].to_bits(),
            "{what}: f{i} raw bits ({} vs {})",
            sa.fregs[i],
            sb.fregs[i]
        );
    }
    let mut pages = a.mem().resident_page_nos();
    pages.extend(b.mem().resident_page_nos());
    pages.sort_unstable();
    pages.dedup();
    for p in pages {
        let pa = a.mem_mut().read_vec(p * PAGE_BYTES, PAGE_BYTES as usize);
        let pb = b.mem_mut().read_vec(p * PAGE_BYTES, PAGE_BYTES as usize);
        assert_eq!(pa, pb, "{what}: page {p:#x} content");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Journal-undo restores the pre-window image exactly, and the
    /// restored state replays the window bit-identically to a clone of
    /// the original snapshot — over random programs and window bounds.
    #[test]
    fn journal_restore_is_bit_identical_to_clone_restore(
        ops in proptest::collection::vec(any::<u8>(), 10..120),
        iters in 1u64..50,
        cut in 0.0f64..1.0,
    ) {
        let program = build_program(&ops, iters);
        let total = {
            let mut c = Cpu::new(&program).unwrap();
            c.run(u64::MAX).unwrap()
        };
        // A window boundary somewhere strictly inside the run.
        let skip = ((total as f64 * cut) as u64).min(total.saturating_sub(1));
        let len = total - skip;

        let mut snap = Cpu::new(&program).unwrap();
        snap.step_n(skip, |_| ()).unwrap();
        let reference = snap.clone();

        // Journal path: run the window on the snapshot itself, rewind.
        snap.begin_journal();
        let mut journaled = Vec::new();
        snap.step_n(len, |r| journaled.push((r.pc, r.next_pc))).unwrap();
        let traffic = snap.undo_journal();
        prop_assert!(traffic > 0, "a non-empty window must journal something");

        // The rewound snapshot equals the untouched clone...
        let mut reference = reference;
        assert_cpus_bit_identical(&mut snap, &mut reference.clone(), "after undo");

        // ...and replays the window identically to the clone path.
        let mut replayed = Vec::new();
        snap.step_n(len, |r| replayed.push((r.pc, r.next_pc))).unwrap();
        reference.step_n(len, |_| ()).unwrap();
        prop_assert_eq!(journaled, replayed, "retired streams must match across restore");
        assert_cpus_bit_identical(&mut snap, &mut reference, "after journaled replay");
    }

    /// A window that *faults* (halts mid-flight) still rewinds exactly:
    /// undo after the error restores the pre-window image bit for bit.
    #[test]
    fn journal_restore_survives_a_faulting_window(
        ops in proptest::collection::vec(any::<u8>(), 10..80),
        iters in 1u64..30,
    ) {
        let program = build_program(&ops, iters);
        let total = {
            let mut c = Cpu::new(&program).unwrap();
            c.run(u64::MAX).unwrap()
        };
        let skip = total / 2;
        let mut snap = Cpu::new(&program).unwrap();
        snap.step_n(skip, |_| ()).unwrap();
        let mut reference = snap.clone();

        // Ask for more instructions than remain: the window halts, the
        // engine reports the error, and the journal must still rewind.
        snap.begin_journal();
        let r = snap.step_n(total, |_| ());
        prop_assert!(r.is_err(), "over-long window must halt");
        snap.undo_journal();
        assert_cpus_bit_identical(&mut snap, &mut reference, "after faulting window undo");
    }
}

// ---- sweep layer: journal restore vs clone restore, end to end --------

const TOTAL: u64 = 120_000;
const SPAN: u64 = 15_000;

fn rsr(pct: u8) -> WarmupPolicy {
    WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(pct) }
}

/// Four machine variants sharing one logging signature; small-enough
/// geometry deltas that indexes are shared between some configs and not
/// others.
fn swept_configs() -> Vec<(String, DetailSpec)> {
    let mk = |l1d_kb: u64, ghr: u32, pct: u8| {
        let mut m = machine();
        m.hier.l1d.size_bytes = l1d_kb * 1024;
        m.pred.ghr_bits = ghr;
        DetailSpec::new(&m).policy(rsr(pct))
    };
    vec![
        ("paper".into(), mk(32, 12, 20)),
        ("small-l1d".into(), mk(8, 12, 20)),
        ("same-geom".into(), mk(32, 12, 20)),
        ("deep-ghr".into(), mk(32, 16, 60)),
    ]
}

fn sweep_at(replay_threads: usize, budget: Option<usize>, plan: Option<FaultPlan>) -> SweepOutcome {
    let program: &'static Program = Box::leak(Box::new(tiny(Benchmark::Twolf)));
    let mut cold = ColdSpec::new(program)
        .regimen(SamplingRegimen::new(8, 400))
        .total_insts(TOTAL)
        .seed(11)
        .shard_span(SPAN);
    if let Some(b) = budget {
        cold = cold.log_budget_bytes(b);
    }
    if let Some(p) = plan {
        cold = cold.fault_plan(p).max_shard_retries(1);
    }
    let mut sweep = SweepSpec::new(cold).replay_threads(replay_threads);
    for (name, d) in swept_configs() {
        sweep = sweep.config(name, d);
    }
    sweep.run().expect("sweep completes")
}

fn assert_outcomes_equal(a: &SampleOutcome, b: &SampleOutcome, what: &str) {
    assert_eq!(a.est_ipc(), b.est_ipc(), "{what}: est_ipc");
    assert_eq!(a.clusters.values(), b.clusters.values(), "{what}: IPC clusters");
    assert_eq!(a.hot_insts, b.hot_insts, "{what}: hot_insts");
    assert_eq!(a.skipped_insts, b.skipped_insts, "{what}: skipped_insts");
    assert_eq!(a.log_records, b.log_records, "{what}: log_records");
    assert_eq!(a.recon, b.recon, "{what}: recon stats");
    assert_eq!(a.clusters_degraded, b.clusters_degraded, "{what}: clusters_degraded");
}

/// `replay_threads = 1` (journal restore, shared indexes, in-place
/// replay) vs a fan-out of one config per worker (clone restore, no
/// journal): every deterministic field must agree, with and without
/// budget-truncated logs.
#[test]
fn sweep_journal_and_clone_paths_agree() {
    for budget in [None, Some(3_000)] {
        let journal = sweep_at(1, budget, None);
        let clone = sweep_at(4, budget, None);
        assert_eq!(journal.replay_threads, 1);
        assert_eq!(clone.replay_threads, 4);
        // The serial path journals between configs; the one-config-per-
        // chunk fan-out never needs to.
        assert!(journal.restore_bytes > 0, "journal path must report undo traffic");
        assert_eq!(clone.restore_bytes, 0, "one config per chunk needs no journal");
        // Index sharing happens in both modes (two configs share full
        // geometry, three share the branch side).
        if budget.is_none() {
            assert!(journal.index_builds_shared > 0, "memo must share index builds");
            assert_eq!(journal.index_builds, clone.index_builds, "builds are mode-independent");
            assert_eq!(journal.index_builds_shared, clone.index_builds_shared);
        } else {
            // A 3 KB budget truncates every region at this scale: no
            // indexes are built at all, and every cluster degrades.
            assert!(journal.configs.iter().all(|c| c.outcome.clusters_degraded > 0));
        }
        for (j, c) in journal.configs.iter().zip(&clone.configs) {
            assert_eq!(j.name, c.name);
            assert_outcomes_equal(
                &j.outcome,
                &c.outcome,
                &format!("{} journal-vs-clone (budget {budget:?})", j.name),
            );
        }
    }
}

/// Injected shard faults heal identically through both restore paths:
/// the journaled serial replay and the cloned fan-out replay recover the
/// same outcomes after a worker panic in the fused capture+replay pass.
#[test]
fn sweep_restore_paths_heal_faults_identically() {
    let plan = FaultPlan::new().with(FaultKind::WorkerPanic, 0);
    let journal = sweep_at(1, None, Some(plan.clone()));
    let clone = sweep_at(4, None, Some(plan));
    assert_eq!(journal.shard_retries, 1, "exactly one healed retry");
    assert_eq!(clone.shard_retries, 1, "exactly one healed retry");
    let baseline = sweep_at(1, None, None);
    for ((j, c), b) in journal.configs.iter().zip(&clone.configs).zip(&baseline.configs) {
        assert_outcomes_equal(
            &j.outcome,
            &c.outcome,
            &format!("{} healed journal-vs-clone", j.name),
        );
        assert_outcomes_equal(&j.outcome, &b.outcome, &format!("{} healed-vs-clean", j.name));
    }
}
