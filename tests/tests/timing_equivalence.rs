//! SoA hot-path kernel equivalence: the rebuilt detailed-window structures
//! — the flat tag/rank/bitmask [`Cache`], the packed-counter [`Gshare`],
//! the bitset [`Btb`], and the inline-array [`Ras`] — must be bit-identical
//! to their retained reference implementations ([`RefCache`], [`RefGshare`],
//! [`RefBtb`], [`RefRas`]) on every observable: per-access outcomes,
//! statistics, per-set dumps, predictions, counters, and reconstructed
//! state. Streams include random access/branch mixes, reverse
//! reconstruction with budget cuts, and real [`SkipLog`] replays with
//! ext-spill records and over-budget truncation.

use proptest::prelude::*;
use rsr_branch::{Btb, Counter2, Gshare, Ras, RasOp, RefBtb, RefGshare, RefRas};
use rsr_cache::{AccessKind, Cache, CacheConfig, RefCache, WritePolicy};
use rsr_core::SkipLog;
use rsr_func::{BranchRec, MemAccess, Retired};
use rsr_isa::{CtrlKind, Inst, MemWidth, Op};

fn cache_cfg(assoc: usize, sets: u64, policy: WritePolicy) -> CacheConfig {
    CacheConfig {
        name: "EQ".into(),
        size_bytes: sets * assoc as u64 * 64,
        assoc,
        line_bytes: 64,
        write_policy: policy,
        hit_latency: 1,
    }
}

/// Full observable state comparison: statistics plus every set's
/// `(tag, valid, rank, reconstructed)` dump.
fn assert_cache_state(c: &Cache, r: &RefCache, what: &str) {
    assert_eq!(c.stats(), r.stats(), "{what}: stats");
    assert_eq!(c.num_sets(), r.num_sets(), "{what}: geometry");
    for set in 0..c.num_sets() {
        assert_eq!(c.dump_set(set), r.dump_set(set), "{what}: set {set}");
        assert_eq!(c.set_tags_mru_order(set), r.set_tags_mru_order(set), "{what}: MRU set {set}");
    }
    assert_eq!(c.complete_sets(), r.complete_sets(), "{what}: complete sets");
    assert_eq!(c.fully_reconstructed(), r.fully_reconstructed(), "{what}: fully recon");
}

/// An address whose set index is `set` and tag is `tag` for `sets`-set,
/// 64-byte-line geometry.
fn addr_for(sets: u64, set: u64, tag: u64) -> u64 {
    (tag << (6 + sets.trailing_zeros())) | (set << 6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random access streams (reads, writes, evictions, writebacks) through
    /// the SoA cache and the reference cache produce identical outcomes,
    /// statistics, and line state under both write policies.
    #[test]
    fn prop_cache_access_stream_equivalent(
        assoc in 1usize..=8,
        stream in proptest::collection::vec((0u64..8, 0u64..6, any::<bool>()), 1..250),
    ) {
        for policy in [WritePolicy::WriteBackAllocate, WritePolicy::WriteThroughNoAllocate] {
            let cfg = cache_cfg(assoc, 8, policy);
            let mut c = Cache::new(cfg.clone());
            let mut r = RefCache::new(cfg);
            for (i, &(set, tag, is_write)) in stream.iter().enumerate() {
                let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
                let a = addr_for(8, set, tag);
                prop_assert_eq!(c.probe(a), r.probe(a), "probe {} ({:?})", i, policy);
                let got = c.access(a, kind);
                let want = r.access(a, kind);
                prop_assert_eq!(got, want, "access {} ({:?})", i, policy);
            }
            assert_cache_state(&c, &r, &format!("{policy:?}"));
        }
    }

    /// Reverse reconstruction — stale prep, a reversed reference stream
    /// with a budget cut, rank normalization, then continued forward
    /// execution — stays bit-identical, including the per-reference
    /// [`ReconOutcome`](rsr_cache::ReconOutcome) sequence.
    #[test]
    fn prop_cache_reconstruction_equivalent(
        assoc in 1usize..=8,
        prep in proptest::collection::vec((0u64..4, 0u64..6), 0..60),
        refs in proptest::collection::vec((0u64..4, 0u64..6), 1..120),
        resume in proptest::collection::vec((0u64..4, 0u64..6, any::<bool>()), 0..40),
        cut_pct in 0u64..=100,
    ) {
        let cfg = cache_cfg(assoc, 4, WritePolicy::WriteBackAllocate);
        let mut c = Cache::new(cfg.clone());
        let mut r = RefCache::new(cfg);
        for &(set, tag) in &prep {
            let a = addr_for(4, set, tag);
            c.access(a, AccessKind::Read);
            r.access(a, AccessKind::Read);
        }
        c.begin_reconstruction();
        r.begin_reconstruction();
        // Newest-first replay, truncated at the budget cut — the same
        // shape an over-budget skip log presents.
        let keep = (refs.len() as u64 * cut_pct / 100) as usize;
        for (i, &(set, tag)) in refs.iter().rev().take(keep.max(1)).enumerate() {
            let a = addr_for(4, set, tag);
            prop_assert_eq!(
                c.reconstruct_ref(a),
                r.reconstruct_ref(a),
                "recon outcome {}", i
            );
        }
        c.finish_reconstruction();
        r.finish_reconstruction();
        assert_cache_state(&c, &r, "post-finish");
        // The normalized ranks must drive identical replacement afterward.
        for &(set, tag, is_write) in &resume {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let a = addr_for(4, set, tag);
            prop_assert_eq!(c.access(a, kind), r.access(a, kind));
        }
        assert_cache_state(&c, &r, "post-resume");
    }

    /// The packed-word gshare agrees with the reference on every index,
    /// prediction, counter update, and reconstructed bit under interleaved
    /// predict/update/warm/speculate/overwrite streams.
    #[test]
    fn prop_gshare_equivalent(
        hist_bits in 2u32..=12,
        ops in proptest::collection::vec((any::<u64>(), any::<bool>(), 0u8..5), 1..300),
    ) {
        let mut g = Gshare::new(hist_bits);
        let mut r = RefGshare::new(hist_bits);
        g.begin_reconstruction();
        r.begin_reconstruction();
        for &(raw, taken, sel) in &ops {
            let pc = raw & 0xffff_ffff_ffff;
            match sel {
                0 => {
                    let (idx, t) = g.predict_indexed(pc);
                    prop_assert_eq!(idx, r.index(pc), "index for {:#x}", pc);
                    prop_assert_eq!(t, r.predict(pc), "prediction for {:#x}", pc);
                }
                1 => {
                    let idx = g.index(pc);
                    g.update_at(idx, taken);
                    r.update_at(idx, taken);
                }
                2 => {
                    g.speculate_ghr(taken);
                    r.speculate_ghr(taken);
                }
                3 => {
                    g.warm_update(pc, taken);
                    r.warm_update(pc, taken);
                }
                _ => {
                    let idx = g.index(pc);
                    let v = Counter2::new((raw >> 17) as u8 & 3);
                    g.set_counter(idx, v);
                    r.set_counter(idx, v);
                    g.mark_reconstructed(idx);
                    r.mark_reconstructed(idx);
                }
            }
        }
        prop_assert_eq!(g.ghr(), r.ghr(), "final GHR");
        for i in 0..g.num_entries() {
            prop_assert_eq!(g.counter_at(i), r.counter_at(i), "counter {}", i);
            prop_assert_eq!(g.is_reconstructed(i), r.is_reconstructed(i), "recon bit {}", i);
        }
    }

    /// The bitset BTB and inline-array RAS agree with their references on
    /// lookups, updates, reconstruction, and checkpoint/restore.
    #[test]
    fn prop_btb_ras_equivalent(
        ops in proptest::collection::vec((any::<u64>(), any::<u64>(), 0u8..5), 1..250),
        ras_entries in 1usize..=16,
    ) {
        let mut b = Btb::new(64);
        let mut rb = RefBtb::new(64);
        b.begin_reconstruction();
        rb.begin_reconstruction();
        let mut ras = Ras::new(ras_entries);
        let mut rras = RefRas::new(ras_entries);
        let mut snaps: Vec<(Ras, RefRas)> = Vec::new();
        for &(raw, target, sel) in &ops {
            let pc = (raw & 0xffff_ffff_ffff) & !3;
            match sel {
                0 => {
                    prop_assert_eq!(b.peek(pc), rb.peek(pc), "peek {:#x}", pc);
                    prop_assert_eq!(b.lookup(pc), rb.peek(pc), "lookup {:#x}", pc);
                    prop_assert_eq!(ras.peek(), rras.peek(), "RAS peek");
                }
                1 => {
                    b.update(pc, target);
                    rb.update(pc, target);
                    ras.push(target);
                    rras.push(target);
                }
                2 => {
                    prop_assert_eq!(
                        b.reconstruct(pc, target),
                        rb.reconstruct(pc, target),
                        "reconstruct {:#x}", pc
                    );
                    prop_assert_eq!(b.is_reconstructed(pc), rb.is_reconstructed(pc));
                }
                3 => {
                    prop_assert_eq!(ras.pop(), rras.pop(), "RAS pop");
                    b.mark_reconstructed(pc);
                    rb.mark_reconstructed(pc);
                }
                _ => {
                    if raw % 3 == 0 {
                        snaps.push((ras.checkpoint(), rras.checkpoint()));
                    } else if let Some((s, rs)) = snaps.pop() {
                        ras.restore(&s);
                        rras.restore(&rs);
                    }
                }
            }
        }
        for i in 0..64u64 {
            let pc = i << 2;
            prop_assert_eq!(b.peek(pc), rb.peek(pc), "final BTB entry {}", i);
            prop_assert_eq!(b.is_reconstructed(pc), rb.is_reconstructed(pc));
        }
        for _ in 0..ras_entries {
            prop_assert_eq!(ras.pop(), rras.pop(), "final RAS drain");
        }
    }

    /// Reverse RAS reconstruction over random op streams fills both stacks
    /// identically.
    #[test]
    fn prop_ras_reconstruct_equivalent(
        entries in 1usize..=16,
        words in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let ops: Vec<RasOp> = words
            .iter()
            .map(|&w| if w % 3 == 0 { RasOp::Pop } else { RasOp::Push(w) })
            .collect();
        let mut ras = Ras::new(entries);
        let mut rras = RefRas::new(entries);
        ras.reconstruct(ops.iter().rev().copied());
        rras.reconstruct(ops.iter().rev().copied());
        for _ in 0..entries {
            prop_assert_eq!(ras.pop(), rras.pop());
        }
    }
}

/// Synthesizes an adversarial retired stream: 48-bit PCs with bit 45 set on
/// a stride (forcing ext-spill side records), non-sequential next PCs,
/// stores, and every control kind.
fn stream_from_words(words: &[u64]) -> Vec<Retired> {
    let kinds = [
        CtrlKind::CondBranch,
        CtrlKind::Jump,
        CtrlKind::Call,
        CtrlKind::IndirectCall,
        CtrlKind::Return,
        CtrlKind::IndirectJump,
    ];
    words
        .iter()
        .enumerate()
        .map(|(seq, &r)| {
            let pc =
                if r % 5 == 0 { (r | (1 << 45)) % (1 << 48) } else { 0x1_0000 + (r % 4096) * 4 };
            let next_pc = if r % 3 == 0 { r.rotate_left(17) } else { pc.wrapping_add(4) };
            let mem = (r % 2 == 0).then(|| MemAccess {
                addr: r.rotate_left(29) % (1 << 48),
                width: MemWidth::B8,
                is_store: r % 4 == 0,
            });
            let branch = (r % 3 == 0).then(|| BranchRec {
                kind: kinds[(r % 6) as usize],
                taken: r % 2 == 0,
                target: r.rotate_left(41) % (1 << 48),
            });
            Retired {
                seq: seq as u64,
                pc,
                next_pc,
                inst: Inst::new(Op::Add, 0, 0, 0, 0),
                mem,
                branch,
            }
        })
        .collect()
}

/// Replays a real skip log — ext-spill records included, optionally
/// budget-truncated — through paired SoA/reference structures: the memory
/// column drives an L1-like and an L2-like cache pair (reverse scan at a
/// 20 % budget cut, then rank normalization), the branch column drives a
/// gshare/BTB pair forward. Every observable must match.
fn assert_log_replay_equivalent(log: &SkipLog, what: &str) {
    // Cache pairs: small L1/L2-shaped geometries (the kernels are
    // geometry-generic; tiny sets keep the dump comparison fast).
    let l1_cfg = cache_cfg(4, 64, WritePolicy::WriteThroughNoAllocate);
    let l2_cfg = cache_cfg(8, 128, WritePolicy::WriteBackAllocate);
    for cfg in [l1_cfg, l2_cfg] {
        let mut c = Cache::new(cfg.clone());
        let mut r = RefCache::new(cfg);
        c.begin_reconstruction();
        r.begin_reconstruction();
        let keep = (log.mem_len() / 5).max(1); // the paper's 20 % budget
        for (i, (addr, _is_inst)) in log.mem_refs_rev().take(keep).enumerate() {
            assert_eq!(c.reconstruct_ref(addr), r.reconstruct_ref(addr), "{what}: mem ref {i}");
        }
        c.finish_reconstruction();
        r.finish_reconstruction();
        assert_cache_state(&c, &r, what);
    }

    // Branch pair: materialized records (the ext path resolves spilled
    // PCs) drive functional warm updates and BTB installs forward.
    let mut g = Gshare::new(12);
    let mut rg = RefGshare::new(12);
    let mut b = Btb::new(4096);
    let mut rb = RefBtb::new(4096);
    let mut pcs = Vec::new();
    for rec in log.branch_records() {
        if rec.kind == CtrlKind::CondBranch {
            g.warm_update(rec.pc, rec.taken);
            rg.warm_update(rec.pc, rec.taken);
        }
        if rec.taken {
            b.update(rec.pc, rec.target);
            rb.update(rec.pc, rec.target);
        }
        pcs.push(rec.pc);
    }
    assert_eq!(g.ghr(), rg.ghr(), "{what}: GHR after replay");
    for i in 0..g.num_entries() {
        assert_eq!(g.counter_at(i), rg.counter_at(i), "{what}: PHT entry {i}");
    }
    for pc in pcs {
        assert_eq!(b.peek(pc), rb.peek(pc), "{what}: BTB at {pc:#x}");
    }
}

#[test]
fn skip_log_replays_with_ext_spill_records_stay_equivalent() {
    let words: Vec<u64> = (0..4000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
    let stream = stream_from_words(&words);
    let mut log = SkipLog::new(true, true, 0);
    for r in &stream {
        log.record(r);
    }
    assert!(log.mem_len() > 0 && log.branch_len() > 0);
    assert_log_replay_equivalent(&log, "ext-spill");
}

#[test]
fn budget_truncated_skip_logs_stay_equivalent() {
    let words: Vec<u64> = (0..3000u64).map(|i| i.wrapping_mul(0x2545_f491_4f6c_dd1d)).collect();
    let stream = stream_from_words(&words);
    // Budget sized so the log keeps a prefix, then truncates: both sides
    // of the pair see the same post-truncation record set.
    let mut log = SkipLog::new(true, true, 0);
    log.set_budget(Some(8 * 1024));
    for r in &stream {
        log.record(r);
    }
    assert!(log.truncated(), "budget must actually truncate this stream");
    assert_log_replay_equivalent(&log, "truncated");
}
