//! The fault matrix: every [`FaultKind`] exercised at 1 and 4 threads.
//!
//! The supervision contract under test is two-sided. With retry budget, a
//! run that suffers a shard-infrastructure fault (worker panic, lost or
//! corrupted checkpoint) must heal and produce results *bit-identical* to
//! a fault-free run — retries replay the exact windows the failed group
//! owned, from the supervisor's retained checkpoint. Without budget, the
//! run must fail with a typed error naming the shard group. Resource
//! guards follow the same discipline: log-budget exhaustion degrades
//! clusters to the paper's stale-state (no-history) fallback
//! deterministically and identically at every thread count, and a deadline
//! aborts with a typed count of completed work.

use std::time::Duration;

use rsr_core::{
    FaultKind, FaultPlan, Pct, RunSpec, SampleOutcome, SamplingRegimen, SimError, WarmupPolicy,
};
use rsr_integration::{machine, tiny};
use rsr_workloads::Benchmark;

const TOTAL: u64 = 250_000;
/// Same scale as `sharding.rs`: ~12 canonical shards, so 4 threads form
/// several worker groups and the scout/checkpoint machinery really runs.
const SPAN: u64 = 20_000;

/// Runs the standard scenario (twolf, 12x600 clusters, RSR warm-up) with
/// the given supervision knobs.
fn run_with(
    plan: Option<FaultPlan>,
    threads: usize,
    retries: u32,
) -> Result<SampleOutcome, SimError> {
    let program = tiny(Benchmark::Twolf);
    let machine = machine();
    let mut spec = RunSpec::new(&program, &machine)
        .regimen(SamplingRegimen::new(12, 600))
        .total_insts(TOTAL)
        .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) })
        .seed(9)
        .shard_span(SPAN)
        .threads(threads)
        .max_shard_retries(retries);
    if let Some(p) = plan {
        spec = spec.fault_plan(p);
    }
    spec.run()
}

/// The fault-free reference: sequential, no retries needed.
fn baseline() -> SampleOutcome {
    run_with(None, 1, 0).expect("fault-free baseline must run")
}

/// Everything deterministic two equivalent runs must agree on. Wall-clock
/// and phase times legitimately differ; `shard_retries` is telemetry about
/// the healing itself, asserted separately per test.
fn assert_equivalent(a: &SampleOutcome, b: &SampleOutcome, what: &str) {
    assert_eq!(a.clusters.values(), b.clusters.values(), "{what}: IPC clusters drifted");
    assert_eq!(a.cpi_clusters.values(), b.cpi_clusters.values(), "{what}: CPI clusters drifted");
    assert_eq!(a.hot_insts, b.hot_insts, "{what}: hot_insts");
    assert_eq!(a.skipped_insts, b.skipped_insts, "{what}: skipped_insts");
    assert_eq!(a.log_records, b.log_records, "{what}: log_records");
    assert_eq!(a.log_bytes_peak, b.log_bytes_peak, "{what}: log_bytes_peak");
    assert_eq!(a.warm_updates, b.warm_updates, "{what}: warm_updates");
    assert_eq!(a.recon, b.recon, "{what}: reconstruction stats");
    assert_eq!(a.clusters_degraded, b.clusters_degraded, "{what}: clusters_degraded");
}

#[test]
fn worker_panic_heals_bit_identically_at_any_thread_count() {
    let base = baseline();
    for threads in [1, 4] {
        // At one thread the whole run is group 0; at four, hit a worker
        // that starts from a scout checkpoint.
        let group = if threads == 1 { 0 } else { 1 };
        let plan = FaultPlan::new().with(FaultKind::WorkerPanic, group);
        let out = run_with(Some(plan), threads, 1)
            .unwrap_or_else(|e| panic!("{threads} threads: retry should heal, got {e}"));
        assert_equivalent(&base, &out, &format!("panic healed at {threads} threads"));
        assert_eq!(out.shard_retries, 1, "{threads} threads: exactly one retry");
    }
}

#[test]
fn worker_panic_without_budget_is_a_typed_error() {
    for (threads, group) in [(1usize, 0usize), (4, 1)] {
        let plan = FaultPlan::new().with(FaultKind::WorkerPanic, group);
        match run_with(Some(plan), threads, 0) {
            Err(SimError::ShardPanicked { index, message }) => {
                assert_eq!(index, group, "{threads} threads: wrong group named");
                assert!(
                    message.contains("injected fault"),
                    "{threads} threads: payload lost, got `{message}`"
                );
            }
            other => panic!("{threads} threads: expected ShardPanicked, got {other:?}"),
        }
    }
}

#[test]
fn dropped_checkpoint_heals_from_the_retained_copy() {
    let base = baseline();
    // Sequential runs use no checkpoints, so the fault is inert there.
    let plan = FaultPlan::new().with(FaultKind::DropCheckpoint, 2);
    let seq = run_with(Some(plan.clone()), 1, 0).expect("inert at one thread");
    assert_equivalent(&base, &seq, "drop at 1 thread");
    assert_eq!(seq.shard_retries, 0);

    let healed = run_with(Some(plan.clone()), 4, 1).expect("retry should heal");
    assert_equivalent(&base, &healed, "drop healed at 4 threads");
    assert_eq!(healed.shard_retries, 1);

    match run_with(Some(plan), 4, 0) {
        Err(e @ SimError::Shard { index: 2 }) => assert_eq!(e.shard_index(), Some(2)),
        other => panic!("expected Shard {{ index: 2 }}, got {other:?}"),
    }
}

#[test]
fn corrupt_checkpoint_is_detected_and_healed() {
    let base = baseline();
    let plan = FaultPlan::new().with(FaultKind::CorruptCheckpoint, 1);
    let seq = run_with(Some(plan.clone()), 1, 0).expect("inert at one thread");
    assert_equivalent(&base, &seq, "corrupt at 1 thread");

    let healed = run_with(Some(plan.clone()), 4, 1).expect("retry should heal");
    assert_equivalent(&base, &healed, "corruption healed at 4 threads");
    assert_eq!(healed.shard_retries, 1);

    match run_with(Some(plan), 4, 0) {
        Err(SimError::CheckpointCorrupt { index: 1, expected, found }) => {
            assert_ne!(expected, found, "verification must show the mismatch");
        }
        other => panic!("expected CheckpointCorrupt at group 1, got {other:?}"),
    }
}

#[test]
fn slow_shard_never_changes_results() {
    let base = baseline();
    for threads in [1, 4] {
        let group = if threads == 1 { 0 } else { 2 };
        let plan = FaultPlan::new().with(FaultKind::SlowShard, group);
        let out = run_with(Some(plan), threads, 0).expect("a straggler is not a failure");
        assert_equivalent(&base, &out, &format!("straggler at {threads} threads"));
        assert_eq!(out.shard_retries, 0);
    }
}

#[test]
fn log_exhaustion_degrades_identically_at_every_thread_count() {
    let base = baseline();
    assert_eq!(base.clusters_degraded, 0, "fault-free run must not degrade");
    let plan = FaultPlan::new().with(FaultKind::ExhaustLogBudget, 0);
    let seq = run_with(Some(plan.clone()), 1, 0).expect("degradation is not failure");
    let par = run_with(Some(plan), 4, 0).expect("degradation is not failure");
    assert!(seq.clusters_degraded > 0, "a zero budget must degrade clusters");
    assert!(seq.clusters_degraded <= seq.clusters.len() as u64);
    // Degradation is per skip region, decided by each region's own
    // deterministic record stream — so sharding must not move it.
    assert_equivalent(&seq, &par, "forced exhaustion, 1 vs 4 threads");
}

#[test]
fn log_budget_bytes_caps_the_log_and_counts_degradations() {
    const BUDGET: usize = 2 * 1024;
    let program = tiny(Benchmark::Twolf);
    let machine = machine();
    let spec = RunSpec::new(&program, &machine)
        .regimen(SamplingRegimen::new(12, 600))
        .total_insts(TOTAL)
        .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) })
        .seed(9)
        .shard_span(SPAN)
        .log_budget_bytes(BUDGET);
    let seq = spec.run().expect("budgeted run completes");
    let par = spec.clone().threads(4).run().expect("budgeted run completes");
    assert!(seq.clusters_degraded > 0, "2 KiB must be exhausted at this scale");
    // The cap may be overshot by at most the final record batch (one
    // retired instruction logs a handful of fixed-size records).
    assert!(
        seq.log_bytes_peak <= BUDGET + 256,
        "peak {} escaped the {BUDGET}-byte budget",
        seq.log_bytes_peak
    );
    assert_equivalent(&seq, &par, "byte budget, 1 vs 4 threads");
    // Same seed, same schedule, unbounded: nothing degrades.
    let unbounded = baseline();
    assert_eq!(unbounded.clusters_degraded, 0);
    assert!(unbounded.log_bytes_peak > BUDGET, "scenario must actually exceed the budget");
}

#[test]
fn deadlines_abort_with_a_typed_progress_report() {
    let program = tiny(Benchmark::Twolf);
    let machine = machine();
    let spec = RunSpec::new(&program, &machine)
        .regimen(SamplingRegimen::new(12, 600))
        .total_insts(TOTAL)
        .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) })
        .seed(9)
        .shard_span(SPAN);
    for threads in [1, 4] {
        match spec.clone().threads(threads).deadline(Duration::ZERO).run() {
            Err(SimError::DeadlineExceeded { completed_shards, total_shards }) => {
                assert_eq!(completed_shards, 0, "{threads} threads: nothing ran yet");
                assert!(total_shards > 1, "{threads} threads: scenario must be sharded");
            }
            other => panic!("{threads} threads: expected DeadlineExceeded, got {other:?}"),
        }
    }
    // A generous deadline is invisible.
    let base = baseline();
    let out = spec.deadline(Duration::from_secs(3600)).run().expect("deadline not reached");
    assert_equivalent(&base, &out, "generous deadline");
}

/// The matrix again with partitioned reconstruction explicitly engaged:
/// 4 reconstruction workers must not perturb healed results, degradation
/// decisions, or fault-free runs.
#[test]
fn fault_matrix_heals_identically_with_recon_threads_4() {
    let base = baseline();
    let run = |plan: Option<FaultPlan>, threads: usize, retries: u32| {
        let program = tiny(Benchmark::Twolf);
        let machine = machine();
        let mut spec = RunSpec::new(&program, &machine)
            .regimen(SamplingRegimen::new(12, 600))
            .total_insts(TOTAL)
            .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) })
            .seed(9)
            .shard_span(SPAN)
            .threads(threads)
            .max_shard_retries(retries)
            .recon_threads(4);
        if let Some(p) = plan {
            spec = spec.fault_plan(p);
        }
        spec.run()
    };
    let clean = run(None, 1, 0).expect("fault-free run at 4 recon workers");
    assert_equivalent(&base, &clean, "recon-threads 4, fault-free");

    let plan =
        FaultPlan::new().with(FaultKind::WorkerPanic, 1).with(FaultKind::CorruptCheckpoint, 2);
    let healed = run(Some(plan), 4, 1).expect("both faults heal with partitioned recon");
    assert_equivalent(&base, &healed, "recon-threads 4, panic + corruption");
    assert_eq!(healed.shard_retries, 2);

    let plan = FaultPlan::new().with(FaultKind::ExhaustLogBudget, 0);
    let seq = run_with(Some(plan.clone()), 1, 0).expect("degradation is not failure");
    let par = run(Some(plan), 4, 0).expect("degradation is not failure");
    assert_equivalent(&seq, &par, "recon-threads 4, forced exhaustion");
}

/// The headline acceptance scenario: one worker panic *and* one corrupted
/// checkpoint in the same 4-thread run, healed by a single retry each,
/// with the merged outcome bit-identical to a fault-free sequential run —
/// and the same scenario with no retry budget failing typed.
#[test]
fn panic_plus_corruption_heal_to_a_bit_identical_run() {
    let base = baseline();
    let plan =
        FaultPlan::new().with(FaultKind::WorkerPanic, 1).with(FaultKind::CorruptCheckpoint, 2);
    let healed = run_with(Some(plan.clone()), 4, 1).expect("both faults heal in one retry each");
    assert_equivalent(&base, &healed, "panic + corruption at 4 threads");
    assert_eq!(healed.shard_retries, 2, "one retry per faulted group");

    match run_with(Some(plan), 4, 0) {
        Err(SimError::ShardPanicked { index, message }) => {
            // Group 1 fails first in schedule order; the payload survives.
            assert_eq!(index, 1);
            assert!(message.contains("injected fault"), "payload lost: `{message}`");
        }
        other => panic!("expected ShardPanicked, got {other:?}"),
    }
}
