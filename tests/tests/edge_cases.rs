//! Edge cases and failure injection across the stack.

use rsr_branch::{Predictor, PredictorConfig};
use rsr_cache::{HierarchyConfig, MemHierarchy};
use rsr_core::{
    reconstruct_caches, BpReconstructor, Pct, SamplingRegimen, SimError, SkipLog, WarmupPolicy,
};
use rsr_func::Cpu;
use rsr_integration::{sample, tiny};
use rsr_isa::{Asm, Reg};
use rsr_timing::{simulate_cluster_hooked, CoreConfig};
use rsr_workloads::Benchmark;

#[test]
fn empty_log_reconstruction_is_a_noop() {
    // A zero-length skip region logs nothing; reconstruction must leave
    // state untouched and the on-demand hook must never block.
    let log = SkipLog::new(true, true, 0xabcd);
    let mut hier = MemHierarchy::new(HierarchyConfig::paper());
    hier.warm_access(0x4000, rsr_cache::HierAccess::Load);
    let stats = reconstruct_caches(&mut hier, &log, Pct::new(100));
    assert_eq!(stats.mem_scanned, 0);
    assert!(hier.l1d.probe(0x4000), "stale content must survive");

    let mut pred = Predictor::new(PredictorConfig::paper());
    let mut recon = BpReconstructor::new(&mut pred, &log, Pct::new(100));
    // GHR reconstruction from an empty log keeps the logged start value.
    assert_eq!(pred.gshare.ghr(), 0xabcd & pred.gshare.ghr_mask());
    use rsr_timing::PredictHook as _;
    recon.before_predict(&mut pred, 0x1000, rsr_branch::PredCtrlKind::CondBranch);
    assert!(pred.gshare.is_reconstructed(pred.gshare.index(0x1000)));
}

#[test]
fn one_percent_budget_still_works() {
    let program = tiny(Benchmark::Vpr);
    let out = sample(
        &program,
        SamplingRegimen::new(6, 400),
        150_000,
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(1) },
        8,
    )
    .unwrap();
    assert_eq!(out.clusters.len(), 6);
    assert!(out.est_ipc() > 0.0);
}

#[test]
fn single_instruction_clusters() {
    let program = tiny(Benchmark::Gcc);
    let out = sample(
        &program,
        SamplingRegimen::new(12, 1),
        100_000,
        WarmupPolicy::Smarts { cache: true, bp: true },
        3,
    )
    .unwrap();
    assert_eq!(out.hot_insts, 12);
    for &ipc in out.clusters.values() {
        assert!(ipc > 0.0);
    }
}

#[test]
fn halting_program_inside_schedule_is_an_error() {
    let mut a = Asm::new();
    for _ in 0..100 {
        a.nop();
    }
    a.halt();
    let program = a.finish().unwrap();
    let err =
        sample(&program, SamplingRegimen::new(4, 100), 10_000, WarmupPolicy::None, 1).unwrap_err();
    assert!(matches!(err, SimError::Exec(_)), "got {err:?}");
}

#[test]
fn runaway_program_surfaces_pc_fault() {
    let mut a = Asm::new();
    a.li(Reg::T0, 0x9000_0000);
    a.jr(Reg::T0); // jump out of text
    let program = a.finish().unwrap();
    let mut cpu = Cpu::new(&program).unwrap();
    let mut hier = MemHierarchy::new(HierarchyConfig::paper());
    let mut pred = Predictor::new(PredictorConfig::paper());
    let err = simulate_cluster_hooked(
        &CoreConfig::paper(),
        &mut cpu,
        &mut hier,
        &mut pred,
        1_000,
        &mut rsr_timing::NoHook,
    )
    .unwrap_err();
    assert!(matches!(err, rsr_func::ExecError::PcOutOfText { .. }));
}

#[test]
fn reconstruction_bits_isolate_regions() {
    // Two consecutive reconstructions must not leak "reconstructed" state
    // into each other.
    let mut hier = MemHierarchy::new(HierarchyConfig::paper());
    let program = tiny(Benchmark::Twolf);
    let mut cpu = Cpu::new(&program).unwrap();
    let mut log = SkipLog::new(true, false, 0);
    for _ in 0..20_000 {
        log.record(&cpu.step().unwrap());
    }
    let s1 = reconstruct_caches(&mut hier, &log, Pct::new(100));
    // Second region with a fresh log over different instructions.
    log.reset(true, false, 0);
    for _ in 0..20_000 {
        log.record(&cpu.step().unwrap());
    }
    let s2 = reconstruct_caches(&mut hier, &log, Pct::new(100));
    assert!(s1.cache_inserted > 0 && s2.cache_inserted > 0);
    // The second pass must have re-marked from scratch (its counters are
    // not cumulative with the first).
    assert!(s2.mem_scanned <= log.mem_len() as u64);
}

#[test]
fn tiny_total_with_minimum_regimen() {
    let program = tiny(Benchmark::Parser);
    let out = sample(
        &program,
        SamplingRegimen::new(2, 50),
        200,
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(50) },
        1,
    )
    .unwrap();
    assert_eq!(out.clusters.len(), 2);
}

#[test]
fn mrrl_handles_degenerate_regions() {
    // Clusters so dense the skip regions are tiny (possibly zero after
    // de-overlap): the profiling pass must not underflow or stall.
    let program = tiny(Benchmark::Ammp);
    let out = sample(
        &program,
        SamplingRegimen::new(10, 100),
        2_000,
        WarmupPolicy::Mrrl { coverage: Pct::new(100) },
        2,
    )
    .unwrap();
    assert_eq!(out.clusters.len(), 10);
}
