//! Sharded execution must be invisible in the results: shard boundaries
//! are derived from the schedule alone (never the thread count), so for
//! any `threads` value the merged outcome carries exactly the same
//! per-cluster numbers, in schedule order. Running `threads = 1` against
//! `threads ∈ {2, 4}` therefore also validates the scout checkpoints: a
//! worker restored from registers + touched pages must replay its shards
//! bit-identically to the in-process sequential pass.

use rsr_core::{Pct, RunSpec, SamplingRegimen, WarmupPolicy};
use rsr_integration::{machine, sample, tiny};
use rsr_workloads::Benchmark;

const TOTAL: u64 = 250_000;
/// Small enough to split a 250k-instruction test run into ~12 canonical
/// shards, so the scout/worker machinery is genuinely exercised.
const SPAN: u64 = 20_000;

fn policies() -> [WarmupPolicy; 2] {
    [
        WarmupPolicy::Smarts { cache: true, bp: true },
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
    ]
}

#[test]
fn thread_count_never_changes_per_cluster_cpis() {
    let machine = machine();
    for bench in [Benchmark::Twolf, Benchmark::Mcf] {
        let program = tiny(bench);
        for policy in policies() {
            let spec = RunSpec::new(&program, &machine)
                .regimen(SamplingRegimen::new(12, 600))
                .total_insts(TOTAL)
                .policy(policy)
                .seed(9)
                .shard_span(SPAN);
            let sequential = spec.run().unwrap();
            for threads in [2, 4] {
                let sharded = spec.clone().threads(threads).run().unwrap();
                assert_eq!(
                    sequential.cpi_clusters.values(),
                    sharded.cpi_clusters.values(),
                    "{bench}/{policy}: CPI vector drifted at {threads} threads"
                );
                assert_eq!(
                    sequential.clusters.values(),
                    sharded.clusters.values(),
                    "{bench}/{policy}: IPC vector drifted at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn sharded_counters_match_sequential_exactly() {
    // Beyond the CPI vectors, every merged counter the estimators and
    // figures read must be shard-invariant.
    let program = tiny(Benchmark::Gcc);
    let machine = machine();
    let spec = RunSpec::new(&program, &machine)
        .regimen(SamplingRegimen::new(10, 800))
        .total_insts(TOTAL)
        .policy(WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(100) })
        .seed(3)
        .shard_span(SPAN);
    let seq = spec.run().unwrap();
    let par = spec.clone().threads(4).run().unwrap();
    assert_eq!(seq.hot_insts, par.hot_insts);
    assert_eq!(seq.skipped_insts, par.skipped_insts);
    assert_eq!(seq.log_records, par.log_records);
    assert_eq!(seq.log_bytes_peak, par.log_bytes_peak);
    assert_eq!(seq.warm_updates, par.warm_updates);
    assert_eq!(seq.recon, par.recon);
    assert_eq!(seq.est_ipc(), par.est_ipc());
    assert_eq!(seq.ipc_error_bound_95(), par.ipc_error_bound_95());
}

#[test]
fn default_span_keeps_short_runs_unsharded() {
    // Below the default shard span the whole run is one canonical shard:
    // continuous carryover, and any thread count degenerates to the
    // classic sequential simulator.
    let program = tiny(Benchmark::Vpr);
    let machine = machine();
    let baseline = sample(
        &program,
        SamplingRegimen::new(8, 500),
        200_000,
        WarmupPolicy::Smarts { cache: true, bp: true },
        2,
    )
    .unwrap();
    let threaded = RunSpec::new(&program, &machine)
        .regimen(SamplingRegimen::new(8, 500))
        .total_insts(200_000)
        .policy(WarmupPolicy::Smarts { cache: true, bp: true })
        .seed(2)
        .threads(4)
        .run()
        .unwrap();
    assert_eq!(baseline.cpi_clusters.values(), threaded.cpi_clusters.values());
}

#[test]
fn more_threads_than_shards_still_works() {
    let program = tiny(Benchmark::Vpr);
    let machine = machine();
    let spec = RunSpec::new(&program, &machine)
        .regimen(SamplingRegimen::new(3, 500))
        .total_insts(60_000)
        .policy(WarmupPolicy::Smarts { cache: true, bp: true })
        .seed(1)
        .shard_span(SPAN);
    let seq = spec.run().unwrap();
    let par = spec.clone().threads(16).run().unwrap();
    assert_eq!(seq.cpi_clusters.values(), par.cpi_clusters.values());
}
