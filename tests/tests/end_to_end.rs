//! End-to-end sampled-simulation behavior across the whole stack.

use rsr_core::{Pct, SamplingRegimen, WarmupPolicy};
use rsr_integration::{full_ipc, sample, tiny};
use rsr_stats::relative_error;
use rsr_workloads::Benchmark;

const TOTAL: u64 = 250_000;

fn regimen() -> SamplingRegimen {
    SamplingRegimen::new(10, 800)
}

#[test]
fn every_paper_policy_completes_on_every_benchmark() {
    // A broad smoke matrix at tiny scale: all 16 configurations must run
    // to completion on all nine workloads and produce sane estimates.
    for bench in Benchmark::ALL {
        let program = tiny(bench);
        for policy in rsr_core::WarmupPolicy::paper_matrix() {
            let out = sample(&program, regimen(), TOTAL, policy, 3)
                .unwrap_or_else(|e| panic!("{bench}/{policy}: {e}"));
            assert_eq!(out.clusters.len(), 10, "{bench}/{policy}");
            assert!(out.est_ipc() > 0.0, "{bench}/{policy}");
            assert!(out.est_ipc() < 4.0, "{bench}/{policy}: IPC beyond retire width");
        }
    }
}

#[test]
fn rsr_full_budget_tracks_smarts_everywhere() {
    // The paper's central claim, directionally: with the whole log
    // available, reverse reconstruction approximates full functional
    // warming on every workload.
    for bench in [Benchmark::Gcc, Benchmark::Twolf, Benchmark::Vortex, Benchmark::Parser] {
        let program = tiny(bench);
        let smarts =
            sample(&program, regimen(), TOTAL, WarmupPolicy::Smarts { cache: true, bp: true }, 3)
                .unwrap();
        let rsr = sample(
            &program,
            regimen(),
            TOTAL,
            WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(100) },
            3,
        )
        .unwrap();
        let gap = (smarts.est_ipc() - rsr.est_ipc()).abs() / smarts.est_ipc();
        assert!(gap < 0.12, "{bench}: RSR {:.4} vs SMARTS {:.4}", rsr.est_ipc(), smarts.est_ipc());
    }
}

#[test]
fn no_warmup_is_the_least_accurate_on_cache_bound_work() {
    let program = tiny(Benchmark::Mcf);
    let truth = full_ipc(&program, TOTAL);
    let none = sample(&program, regimen(), TOTAL, WarmupPolicy::None, 3).unwrap();
    let smarts =
        sample(&program, regimen(), TOTAL, WarmupPolicy::Smarts { cache: true, bp: true }, 3)
            .unwrap();
    assert!(
        relative_error(truth, none.est_ipc()) > relative_error(truth, smarts.est_ipc()),
        "no-warmup must trail SMARTS (none {:.4}, smarts {:.4}, truth {truth:.4})",
        none.est_ipc(),
        smarts.est_ipc()
    );
}

#[test]
fn cache_warming_matters_more_than_bp_on_memory_bound_work() {
    // Figures 5/6: cache state dominates non-sampling bias for
    // memory-bound workloads.
    let program = tiny(Benchmark::Mcf);
    let truth = full_ipc(&program, TOTAL);
    let cache_only =
        sample(&program, regimen(), TOTAL, WarmupPolicy::Smarts { cache: true, bp: false }, 3)
            .unwrap();
    let bp_only =
        sample(&program, regimen(), TOTAL, WarmupPolicy::Smarts { cache: false, bp: true }, 3)
            .unwrap();
    assert!(
        relative_error(truth, cache_only.est_ipc()) < relative_error(truth, bp_only.est_ipc()),
        "cache-only RE should beat BP-only RE (cache {:.4}, bp {:.4}, truth {truth:.4})",
        cache_only.est_ipc(),
        bp_only.est_ipc()
    );
}

#[test]
fn hot_and_skipped_instructions_account_for_the_run() {
    let program = tiny(Benchmark::Vpr);
    let out = sample(&program, regimen(), TOTAL, WarmupPolicy::None, 9).unwrap();
    assert_eq!(out.hot_insts, regimen().hot_instructions());
    // Skipped + hot never exceeds the nominal total and covers at least
    // the last cluster's end.
    assert!(out.skipped_insts + out.hot_insts <= TOTAL);
    assert!(out.skipped_insts > 0);
}

#[test]
fn reverse_bp_reconstruction_improves_over_stale_bp() {
    // RBP vs None on a branch-heavy workload: reconstructing only the
    // predictor should beat leaving everything stale.
    let program = tiny(Benchmark::Gcc);
    let truth = full_ipc(&program, TOTAL);
    let none = sample(&program, regimen(), TOTAL, WarmupPolicy::None, 3).unwrap();
    let rbp = sample(
        &program,
        regimen(),
        TOTAL,
        WarmupPolicy::Reverse { cache: false, bp: true, pct: Pct::new(100) },
        3,
    )
    .unwrap();
    assert!(
        relative_error(truth, rbp.est_ipc()) <= relative_error(truth, none.est_ipc()) + 1e-9,
        "RBP {:.4} vs None {:.4} (truth {truth:.4})",
        rbp.est_ipc(),
        none.est_ipc()
    );
}
