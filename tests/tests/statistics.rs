//! Statistical behavior of the sampled simulator: confidence intervals,
//! standard errors, estimator consistency.

use rsr_core::{RunSpec, SamplingRegimen, Schedule, WarmupPolicy};
use rsr_integration::{full_ipc, machine, sample, tiny};
use rsr_workloads::Benchmark;

const TOTAL: u64 = 400_000;

#[test]
fn more_clusters_tighten_the_confidence_interval() {
    // Standard error scales roughly with 1/sqrt(N). A single schedule can
    // get (un)lucky, so average the SE over several seeds before comparing.
    // The workload must have a reasonably homogeneous cluster-CPI
    // population for that premise: at this tiny scale Twolf/Gcc are
    // heavy-tailed (a rare slow phase caught by one cluster dominates the
    // variance estimate, so small-N runs *underestimate* SE), which says
    // nothing about estimator consistency. Vpr's clusters are uniform
    // enough that the 1/sqrt(N) law shows through.
    let program = tiny(Benchmark::Vpr);
    let smarts = WarmupPolicy::Smarts { cache: true, bp: true };
    let avg_se = |n_clusters: usize| -> f64 {
        let mut acc = 0.0;
        for seed in 1..=8u64 {
            let out = sample(&program, SamplingRegimen::new(n_clusters, 500), TOTAL, smarts, seed)
                .unwrap();
            acc += out.cpi_clusters.std_error();
        }
        acc / 8.0
    };
    let small = avg_se(8);
    let large = avg_se(64);
    assert!(large < small, "SE 8 clusters {small:.5} vs 64 clusters {large:.5}");
}

#[test]
fn well_warmed_sample_passes_its_own_ci_most_of_the_time() {
    // With SMARTS warming and a reasonable regimen, the CI should contain
    // the true IPC (this is the appendix's confidence test).
    let program = tiny(Benchmark::Vortex);
    let truth = full_ipc(&program, TOTAL);
    let out = sample(
        &program,
        SamplingRegimen::new(40, 500),
        TOTAL,
        WarmupPolicy::Smarts { cache: true, bp: true },
        11,
    )
    .unwrap();
    assert!(
        out.predicts_true_ipc(truth),
        "CI around {:.4} (±{:.4}) missed truth {truth:.4}",
        out.est_ipc(),
        out.ipc_error_bound_95()
    );
}

#[test]
fn estimator_uses_equal_cluster_weighting() {
    let program = tiny(Benchmark::Vpr);
    let out =
        sample(&program, SamplingRegimen::new(10, 500), TOTAL, WarmupPolicy::None, 2).unwrap();
    let mean_cpi: f64 =
        out.cpi_clusters.values().iter().sum::<f64>() / out.cpi_clusters.len() as f64;
    assert!((out.est_ipc() - 1.0 / mean_cpi).abs() < 1e-12);
}

#[test]
fn systematic_and_random_schedules_agree_on_uniform_work() {
    // SMARTS-style systematic placement and the paper's random placement
    // must both track the true IPC (the paper's §2 argument is about CI
    // *validity*, not point estimates). Short runs have a visible cold
    // transient, so judge both against the full-run truth rather than
    // against each other.
    let program = tiny(Benchmark::Gcc);
    let truth = full_ipc(&program, TOTAL);
    let regimen = SamplingRegimen::new(24, 500);
    let policy = WarmupPolicy::Smarts { cache: true, bp: true };
    let random = sample(&program, regimen, TOTAL, policy, 7).unwrap();
    let schedule = Schedule::systematic(regimen, TOTAL, 7);
    let systematic =
        RunSpec::new(&program, &machine()).schedule(schedule).policy(policy).run().unwrap();
    // At this tiny scale the program's cold-start transient is a visible
    // fraction of the run, and systematic placement always lands a cluster
    // inside it; drop each sample's first cluster before comparing (the
    // full-scale harness needs no such correction).
    let trimmed_est = |values: &[f64]| {
        let tail = &values[1..];
        tail.len() as f64 / tail.iter().sum::<f64>()
    };
    for (name, est) in [
        ("random", trimmed_est(random.cpi_clusters.values())),
        ("systematic", trimmed_est(systematic.cpi_clusters.values())),
    ] {
        let re = (truth - est).abs() / truth;
        assert!(re < 0.2, "{name} estimate {est:.4} vs truth {truth:.4}");
    }
}

#[test]
fn per_cluster_ipcs_are_positive_and_bounded() {
    let program = tiny(Benchmark::Parser);
    let out = sample(
        &program,
        SamplingRegimen::new(16, 500),
        TOTAL,
        WarmupPolicy::Smarts { cache: true, bp: true },
        4,
    )
    .unwrap();
    for &ipc in out.clusters.values() {
        assert!(ipc > 0.0 && ipc <= 4.0, "cluster IPC {ipc}");
    }
}
