//! The decoupled leader/follower pipeline: bit-identity and guard
//! interplay.
//!
//! The pipeline's contract is that it is a pure wall-clock optimization:
//! for every `(threads, pipeline_depth)` combination the sampled estimate
//! and every deterministic counter must be bit-identical to the
//! sequential seed path, because the follower consumes work items in
//! schedule order and the leader's architectural stream never depends on
//! the follower's microarchitectural state. Supervision must compose
//! unchanged: a leader or follower panic surfaces as a typed shard fault
//! and heals by retry from the pristine checkpoint, an over-budget region
//! degrades the *follower's* reconstruction without desynchronizing the
//! pipeline, and a deadline still aborts at shard granularity with the
//! leader running ahead.

use std::time::Duration;

use rsr_core::{
    FaultKind, FaultPlan, Pct, RunSpec, SampleOutcome, SamplingRegimen, SimError, WarmupPolicy,
};
use rsr_integration::{machine, tiny};
use rsr_workloads::Benchmark;

const TOTAL: u64 = 250_000;
/// Same scale as `fault_injection.rs`: ~12 canonical shards, so 4 threads
/// form several worker groups and each group pipelines several shards.
const SPAN: u64 = 20_000;

fn rsr() -> WarmupPolicy {
    WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) }
}

/// The standard scenario (twolf, 12x600 clusters) with explicit pipeline
/// depth and supervision knobs.
fn run_with(
    policy: WarmupPolicy,
    threads: usize,
    depth: usize,
    plan: Option<FaultPlan>,
    retries: u32,
) -> Result<SampleOutcome, SimError> {
    let program = tiny(Benchmark::Twolf);
    let machine = machine();
    let mut spec = RunSpec::new(&program, &machine)
        .regimen(SamplingRegimen::new(12, 600))
        .total_insts(TOTAL)
        .policy(policy)
        .seed(9)
        .shard_span(SPAN)
        .threads(threads)
        .pipeline_depth(depth)
        .max_shard_retries(retries);
    if let Some(p) = plan {
        spec = spec.fault_plan(p);
    }
    spec.run()
}

/// The sequential reference: one thread, depth 1, no faults.
fn baseline(policy: WarmupPolicy) -> SampleOutcome {
    run_with(policy, 1, 1, None, 0).expect("sequential baseline must run")
}

/// Everything deterministic two equivalent runs must agree on (wall-clock,
/// phase times, and retry telemetry legitimately differ).
fn assert_equivalent(a: &SampleOutcome, b: &SampleOutcome, what: &str) {
    assert_eq!(a.clusters.values(), b.clusters.values(), "{what}: IPC clusters drifted");
    assert_eq!(a.cpi_clusters.values(), b.cpi_clusters.values(), "{what}: CPI clusters drifted");
    assert_eq!(a.est_ipc(), b.est_ipc(), "{what}: est_ipc");
    assert_eq!(a.hot_insts, b.hot_insts, "{what}: hot_insts");
    assert_eq!(a.skipped_insts, b.skipped_insts, "{what}: skipped_insts");
    assert_eq!(a.log_records, b.log_records, "{what}: log_records");
    assert_eq!(a.log_bytes_peak, b.log_bytes_peak, "{what}: log_bytes_peak");
    assert_eq!(a.warm_updates, b.warm_updates, "{what}: warm_updates");
    assert_eq!(a.recon, b.recon, "{what}: reconstruction stats");
    assert_eq!(a.clusters_degraded, b.clusters_degraded, "{what}: clusters_degraded");
}

#[test]
fn pipelined_runs_are_bit_identical_to_sequential() {
    let base = baseline(rsr());
    for threads in [1usize, 4] {
        for depth in [1usize, 2, 4] {
            let out = run_with(rsr(), threads, depth, None, 0)
                .unwrap_or_else(|e| panic!("{threads}t x depth {depth}: {e}"));
            assert_equivalent(&base, &out, &format!("{threads} threads, depth {depth}"));
        }
    }
}

#[test]
fn none_policy_pipelines_bit_identically() {
    // The no-warm-up baseline also decouples (its skip is a plain
    // functional fast-forward); the pipeline must not perturb it either.
    let base = baseline(WarmupPolicy::None);
    assert_eq!(base.log_records, 0, "None must not log");
    for depth in [2usize, 4] {
        let out = run_with(WarmupPolicy::None, 1, depth, None, 0).expect("pipelined None runs");
        assert_equivalent(&base, &out, &format!("None policy, depth {depth}"));
    }
}

#[test]
fn non_decoupling_policies_ignore_the_depth_knob() {
    // SMARTS warms the follower's structures during the skip, so the
    // engine must fall back to the sequential path at any depth rather
    // than desynchronize.
    let smarts = WarmupPolicy::Smarts { cache: true, bp: true };
    let base = baseline(smarts);
    let out = run_with(smarts, 1, 4, None, 0).expect("SMARTS runs at depth 4");
    assert_equivalent(&base, &out, "SMARTS with depth 4 requested");
    assert!(out.warm_updates > 0, "SMARTS must still warm");
}

#[test]
fn leader_panic_heals_and_fails_typed_without_budget() {
    let base = baseline(rsr());
    for (threads, group) in [(1usize, 0usize), (4, 1)] {
        let plan = FaultPlan::new().with(FaultKind::LeaderPanic, group);
        let healed = run_with(rsr(), threads, 2, Some(plan.clone()), 1)
            .unwrap_or_else(|e| panic!("{threads} threads: retry should heal, got {e}"));
        assert_equivalent(&base, &healed, &format!("leader panic healed at {threads} threads"));
        assert_eq!(healed.shard_retries, 1, "{threads} threads: exactly one retry");

        match run_with(rsr(), threads, 2, Some(plan), 0) {
            Err(SimError::ShardPanicked { index, message }) => {
                assert_eq!(index, group, "{threads} threads: wrong group named");
                assert!(message.contains("leader panic"), "payload lost: `{message}`");
            }
            other => panic!("{threads} threads: expected ShardPanicked, got {other:?}"),
        }
    }
}

#[test]
fn follower_panic_crosses_the_thread_boundary_typed() {
    let base = baseline(rsr());
    for (threads, group) in [(1usize, 0usize), (4, 1)] {
        let plan = FaultPlan::new().with(FaultKind::FollowerPanic, group);
        let healed = run_with(rsr(), threads, 2, Some(plan.clone()), 1)
            .unwrap_or_else(|e| panic!("{threads} threads: retry should heal, got {e}"));
        assert_equivalent(&base, &healed, &format!("follower panic healed at {threads} threads"));
        assert_eq!(healed.shard_retries, 1, "{threads} threads: exactly one retry");

        // The panic payload must survive the follower join, the scoped
        // leader thread, and the shard supervisor's catch_unwind.
        match run_with(rsr(), threads, 2, Some(plan), 0) {
            Err(SimError::ShardPanicked { index, message }) => {
                assert_eq!(index, group, "{threads} threads: wrong group named");
                assert!(message.contains("follower panic"), "payload lost: `{message}`");
            }
            other => panic!("{threads} threads: expected ShardPanicked, got {other:?}"),
        }
    }
}

#[test]
fn leader_and_follower_faults_are_inert_without_the_pipeline() {
    // At depth 1 the sequential engine runs: the pipeline faults must
    // not fire (the run completes with zero retries consumed).
    let base = baseline(rsr());
    let plan = FaultPlan::new().with(FaultKind::LeaderPanic, 0).with(FaultKind::FollowerPanic, 0);
    let out = run_with(rsr(), 1, 1, Some(plan), 0).expect("inert at depth 1");
    assert_equivalent(&base, &out, "pipeline faults at depth 1");
    assert_eq!(out.shard_retries, 0);
}

#[test]
fn fault_matrix_reruns_identically_under_the_pipeline() {
    let base = baseline(rsr());
    // Worker panic: the group body (including the pipeline) is retried
    // from the pristine checkpoint.
    let plan = FaultPlan::new().with(FaultKind::WorkerPanic, 1);
    let healed = run_with(rsr(), 4, 2, Some(plan), 1).expect("worker panic heals");
    assert_equivalent(&base, &healed, "worker panic + pipeline");
    assert_eq!(healed.shard_retries, 1);

    // Corrupt checkpoint: detected before the pipeline spins up, healed
    // from the retained copy.
    let plan = FaultPlan::new().with(FaultKind::CorruptCheckpoint, 2);
    let healed = run_with(rsr(), 4, 2, Some(plan.clone()), 1).expect("corruption heals");
    assert_equivalent(&base, &healed, "corrupt checkpoint + pipeline");
    match run_with(rsr(), 4, 2, Some(plan), 0) {
        Err(SimError::CheckpointCorrupt { index: 2, expected, found }) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected CheckpointCorrupt at group 2, got {other:?}"),
    }

    // Forced log exhaustion: every logging region degrades, identically
    // at every depth — the leader seals a truncated log and the follower
    // skips reconstruction for it, with the pipeline staying in lockstep.
    let plan = FaultPlan::new().with(FaultKind::ExhaustLogBudget, 0);
    let seq = run_with(rsr(), 1, 1, Some(plan.clone()), 0).expect("degradation is not failure");
    assert!(seq.clusters_degraded > 0, "zero budget must degrade");
    for (threads, depth) in [(1usize, 2usize), (1, 4), (4, 2)] {
        let out = run_with(rsr(), threads, depth, Some(plan.clone()), 0)
            .expect("degradation is not failure");
        assert_equivalent(&seq, &out, &format!("exhaustion at {threads}t x depth {depth}"));
    }
}

#[test]
fn over_budget_regions_degrade_the_follower_without_desync() {
    const BUDGET: usize = 2 * 1024;
    let program = tiny(Benchmark::Twolf);
    let machine = machine();
    let spec = RunSpec::new(&program, &machine)
        .regimen(SamplingRegimen::new(12, 600))
        .total_insts(TOTAL)
        .policy(rsr())
        .seed(9)
        .shard_span(SPAN)
        .log_budget_bytes(BUDGET);
    let seq = spec.clone().pipeline_depth(1).run().expect("budgeted run completes");
    assert!(seq.clusters_degraded > 0, "2 KiB must be exhausted at this scale");
    assert!(
        seq.clusters_degraded < seq.clusters.len() as u64,
        "scenario needs a mix of degraded and reconstructed clusters"
    );
    for depth in [2usize, 4] {
        let piped = spec.clone().pipeline_depth(depth).run().expect("budgeted run completes");
        assert_equivalent(&seq, &piped, &format!("byte budget at depth {depth}"));
        assert!(piped.log_bytes_peak <= BUDGET + 256, "budget must bound in-flight logs too");
    }
}

#[test]
fn deadline_aborts_at_shard_granularity_with_the_leader_ahead() {
    let program = tiny(Benchmark::Twolf);
    let machine = machine();
    let spec = RunSpec::new(&program, &machine)
        .regimen(SamplingRegimen::new(12, 600))
        .total_insts(TOTAL)
        .policy(rsr())
        .seed(9)
        .shard_span(SPAN)
        .pipeline_depth(4);
    // An already-expired deadline: the leader observes it between regions
    // (or the group supervisor before the first shard), drains the
    // channel, and reports shard-granular progress.
    for threads in [1usize, 4] {
        match spec.clone().threads(threads).deadline(Duration::ZERO).run() {
            Err(SimError::DeadlineExceeded { completed_shards, total_shards }) => {
                assert_eq!(completed_shards, 0, "{threads} threads: nothing ran yet");
                assert!(total_shards > 1, "{threads} threads: scenario must be sharded");
            }
            other => panic!("{threads} threads: expected DeadlineExceeded, got {other:?}"),
        }
    }
    // A generous deadline is invisible, pipelined or not.
    let base = baseline(rsr());
    let out = spec.deadline(Duration::from_secs(3600)).run().expect("deadline not reached");
    assert_equivalent(&base, &out, "generous deadline, depth 4");
}

#[test]
fn overlap_efficiency_is_telemetry_bounded_by_one() {
    let out = run_with(rsr(), 1, 2, None, 0).expect("pipelined run completes");
    let eff = out.overlap_efficiency();
    assert!((0.0..1.0).contains(&eff), "overlap efficiency {eff} out of range");
    // Sequential runs cannot report overlap.
    let seq = baseline(rsr());
    assert!(seq.overlap_efficiency() < 0.05, "sequential run overlapped nothing");
}
