//! Property-based tests spanning the ISA, functional simulator, timing
//! core, and reconstruction machinery.

use proptest::prelude::*;
use rsr_branch::{Predictor, PredictorConfig};
use rsr_cache::{AccessKind, Cache, CacheConfig, HierarchyConfig, MemHierarchy, WritePolicy};
use rsr_core::{reconstruct_caches, Pct, SkipLog};
use rsr_func::Cpu;
use rsr_isa::{Asm, Inst, Reg};
use rsr_timing::{simulate_cluster, CoreConfig};

/// Generates a random but guaranteed-terminating straight-line-ish program:
/// ALU ops, loads/stores into a private buffer, and forward-only branches,
/// wrapped in a bounded counter loop.
fn arb_program() -> impl Strategy<Value = (Vec<u8>, u64)> {
    (proptest::collection::vec(any::<u8>(), 10..120), 1u64..50)
}

fn build_program(ops: &[u8], iters: u64) -> rsr_isa::Program {
    let mut a = Asm::new();
    let buf = a.data_zeros(4096);
    a.la(Reg::S1, buf);
    a.li(Reg::S0, iters as i64);
    let top = a.bind_new("top");
    for (k, &op) in ops.iter().enumerate() {
        let r1 = Reg(10 + (op % 8));
        let r2 = Reg(10 + (op / 8 % 8));
        match op % 7 {
            0 => {
                a.add(r1, r1, r2);
            }
            1 => {
                a.xori(r1, r2, (op as i32) << 3);
            }
            2 => {
                a.andi(Reg::T0, r1, 0xff8);
                a.add(Reg::T0, Reg::T0, Reg::S1);
                a.ld(r2, 0, Reg::T0);
            }
            3 => {
                a.andi(Reg::T0, r2, 0xff8);
                a.add(Reg::T0, Reg::T0, Reg::S1);
                a.sd(r1, 0, Reg::T0);
            }
            4 => {
                // Forward skip of one instruction.
                let skip = a.new_label(&format!("s{k}"));
                a.beq(r1, r2, skip);
                a.addi(r1, r1, 1);
                a.bind(skip).unwrap();
            }
            5 => {
                a.mul(r1, r1, r2);
            }
            _ => {
                a.srli(r1, r1, 3);
            }
        }
    }
    a.addi(Reg::S0, Reg::S0, -1);
    a.bne(Reg::S0, Reg::ZERO, top);
    a.halt();
    a.finish().expect("assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The timing core retires exactly what the functional simulator
    /// retires, never exceeds retire-width IPC, and is deterministic.
    #[test]
    fn timing_core_agrees_with_functional((ops, iters) in arb_program()) {
        let program = build_program(&ops, iters);

        // Functional count until halt.
        let mut cpu = Cpu::new(&program).unwrap();
        let n = cpu.run(u64::MAX).unwrap();

        // Timing run over the full program.
        let mut cpu = Cpu::new(&program).unwrap();
        let mut hier = MemHierarchy::new(HierarchyConfig::paper());
        let mut pred = Predictor::new(PredictorConfig::paper());
        let stats =
            simulate_cluster(&CoreConfig::paper(), &mut cpu, &mut hier, &mut pred, u64::MAX / 2)
                .unwrap();
        prop_assert_eq!(stats.instructions, n);
        prop_assert!(stats.ipc() <= 4.0 + 1e-9);
        prop_assert!(stats.cycles >= n / 4);
    }

    /// Architectural state after the timing run equals pure functional
    /// execution (the timing model must not disturb semantics).
    #[test]
    fn timing_preserves_architectural_state((ops, iters) in arb_program()) {
        let program = build_program(&ops, iters);
        let mut f = Cpu::new(&program).unwrap();
        f.run(u64::MAX).unwrap();

        let mut t = Cpu::new(&program).unwrap();
        let mut hier = MemHierarchy::new(HierarchyConfig::paper());
        let mut pred = Predictor::new(PredictorConfig::paper());
        simulate_cluster(&CoreConfig::paper(), &mut t, &mut hier, &mut pred, u64::MAX / 2)
            .unwrap();

        for r in 0..32u8 {
            prop_assert_eq!(f.ireg(Reg(r)), t.ireg(Reg(r)), "x{} diverged", r);
        }
        prop_assert_eq!(f.pc(), t.pc());
    }

    /// Reverse cache reconstruction from a cold start matches forward LRU
    /// content for arbitrary access streams (read-only, any cache shape).
    #[test]
    fn reverse_recon_matches_forward_lru(
        addrs in proptest::collection::vec(0u64..(1 << 16), 1..300),
        assoc in 1usize..8,
    ) {
        let cfg = CacheConfig {
            name: "P".into(),
            size_bytes: 16 * assoc as u64 * 64,
            assoc,
            line_bytes: 64,
            write_policy: WritePolicy::WriteBackAllocate,
            hit_latency: 1,
        };
        let mut fwd = Cache::new(cfg.clone());
        for &a in &addrs {
            fwd.access(a, AccessKind::Read);
        }
        let mut rev = Cache::new(cfg);
        rev.begin_reconstruction();
        for &a in addrs.iter().rev() {
            rev.reconstruct_ref(a);
            if rev.fully_reconstructed() {
                break;
            }
        }
        rev.finish_reconstruction();
        for set in 0..fwd.num_sets() {
            prop_assert_eq!(
                fwd.set_tags_mru_order(set),
                rev.set_tags_mru_order(set),
                "set {} diverged", set
            );
        }
    }

    /// Logging then reconstructing with a 100% budget never leaves a cache
    /// set in an inconsistent state (every logged line within the last
    /// `assoc` distinct per set is present).
    #[test]
    fn full_budget_recon_is_complete((ops, iters) in arb_program()) {
        let program = build_program(&ops, iters);
        let mut cpu = Cpu::new(&program).unwrap();
        let mut log = SkipLog::new(true, false, 0);
        while !cpu.halted() {
            let r = cpu.step().unwrap();
            log.record(&r);
        }
        let mut hier = MemHierarchy::new(HierarchyConfig::paper());
        reconstruct_caches(&mut hier, &log, Pct::new(100));
        // The newest data reference of the log must be resident.
        if let Some(last) = log.mem_refs_rev().find(|&(_, is_inst)| !is_inst) {
            prop_assert!(hier.l1d.probe(last.0) || hier.l1d.probe(last.0 & !63));
        }
        // The newest instruction line must be resident in the L1I.
        if let Some(last) = log.mem_refs_rev().find(|&(_, is_inst)| is_inst) {
            prop_assert!(hier.l1i.probe(last.0));
        };
    }

    /// Encode/decode of generated programs round-trips through memory.
    #[test]
    fn program_images_roundtrip((ops, iters) in arb_program()) {
        let program = build_program(&ops, iters);
        for (i, &word) in program.text().iter().enumerate() {
            let inst = Inst::decode(word).expect("assembled words decode");
            let back = inst.try_encode().expect("decoded insts re-encode");
            prop_assert_eq!(word, back, "word {}", i);
        }
    }
}
