//! SimPoint pipeline against the rest of the stack.

use rsr_integration::{full_ipc, machine, tiny};
use rsr_simpoint::{analyze, simulate, SimpointConfig};
use rsr_stats::relative_error;
use rsr_workloads::Benchmark;

const TOTAL: u64 = 300_000;

#[test]
fn simpoint_estimate_is_in_the_right_ballpark() {
    let program = tiny(Benchmark::Gcc);
    let truth = full_ipc(&program, TOTAL);
    let cfg = SimpointConfig { max_k: 10, ..SimpointConfig::new(5_000) };
    let analysis = analyze(&program, TOTAL, &cfg).unwrap();
    let out = simulate(&program, &machine(), &analysis, &cfg).unwrap();
    let re = relative_error(truth, out.est_ipc);
    assert!(re < 0.6, "SimPoint RE {re:.3} (truth {truth:.3}, est {:.3})", out.est_ipc);
}

#[test]
fn more_points_do_not_hurt_much() {
    let program = tiny(Benchmark::Twolf);
    let truth = full_ipc(&program, TOTAL);
    let few = SimpointConfig { max_k: 2, ..SimpointConfig::new(5_000) };
    let many = SimpointConfig { max_k: 20, ..SimpointConfig::new(5_000) };
    let out_few = {
        let a = analyze(&program, TOTAL, &few).unwrap();
        simulate(&program, &machine(), &a, &few).unwrap()
    };
    let out_many = {
        let a = analyze(&program, TOTAL, &many).unwrap();
        simulate(&program, &machine(), &a, &many).unwrap()
    };
    let re_few = relative_error(truth, out_few.est_ipc);
    let re_many = relative_error(truth, out_many.est_ipc);
    assert!(
        re_many <= re_few + 0.15,
        "20-point RE {re_many:.3} much worse than 2-point RE {re_few:.3}"
    );
}

#[test]
fn warming_changes_small_interval_results() {
    // With tiny intervals, cold-start bias is severe; warming while
    // skipping must move the estimate (the paper's 50K vs 50K-SMARTS).
    let program = tiny(Benchmark::Mcf);
    let cold_cfg = SimpointConfig { max_k: 8, ..SimpointConfig::new(2_000) };
    let warm_cfg = SimpointConfig { warm: true, ..cold_cfg };
    let analysis = analyze(&program, TOTAL, &cold_cfg).unwrap();
    let cold = simulate(&program, &machine(), &analysis, &cold_cfg).unwrap();
    let warm = simulate(&program, &machine(), &analysis, &warm_cfg).unwrap();
    assert_ne!(cold.est_ipc, warm.est_ipc);
    // For an L2-hostile pointer chase, cold-start inflates miss rates and
    // depresses IPC; warming should raise the estimate.
    assert!(warm.est_ipc > cold.est_ipc);
}

#[test]
fn weights_and_points_are_consistent() {
    let program = tiny(Benchmark::Perl);
    let cfg = SimpointConfig { max_k: 12, ..SimpointConfig::new(4_000) };
    let analysis = analyze(&program, TOTAL, &cfg).unwrap();
    let total_weight: f64 = analysis.points.iter().map(|p| p.weight).sum();
    assert!((total_weight - 1.0).abs() < 1e-9);
    for p in &analysis.points {
        assert!(p.interval < analysis.n_intervals);
        assert!(p.weight > 0.0);
    }
}
