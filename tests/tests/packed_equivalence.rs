//! Packed-vs-legacy skip-log equivalence: the structure-of-arrays log must
//! be observationally identical to the padded array-of-structs
//! representation it replaced — same record streams, same reverse
//! reconstruction outcomes, same budget-truncation decisions — while
//! resident bytes shrink at least 2x on real reference streams.

use rsr_branch::{Predictor, PredictorConfig};
use rsr_cache::{HierarchyConfig, MemHierarchy};
use rsr_core::{
    reconstruct_caches, BpReconstructor, BranchRecord, MemRecord, Pct, ReconStats, SkipLog,
};
use rsr_func::{BranchRec, Cpu, MemAccess, Retired};
use rsr_integration::tiny;
use rsr_isa::{CtrlKind, Inst, MemWidth, Op};
use rsr_workloads::Benchmark;

const LINE_MASK: u64 = !63;

/// The seed representation, replicated verbatim: padded 32-byte AoS
/// records, per-append size recomputation, whole-log discard on budget
/// exhaustion. The oracle the packed log is checked against.
#[derive(Default)]
struct LegacyLog {
    mem: Vec<MemRecord>,
    branches: Vec<BranchRecord>,
    last_fetch_line: u64,
    truncated: bool,
    budget: Option<usize>,
    peak_bytes: usize,
    appended: u64,
}

impl LegacyLog {
    fn new(budget: Option<usize>) -> LegacyLog {
        LegacyLog { last_fetch_line: u64::MAX, budget, ..LegacyLog::default() }
    }

    fn approx_bytes(&self) -> usize {
        self.mem.len() * std::mem::size_of::<MemRecord>()
            + self.branches.len() * std::mem::size_of::<BranchRecord>()
    }

    fn record(&mut self, r: &Retired) {
        if self.truncated {
            return;
        }
        let line = r.pc & LINE_MASK;
        if self.last_fetch_line != line {
            self.last_fetch_line = line;
            self.mem.push(MemRecord {
                pc: r.pc,
                next_pc: r.next_pc,
                addr: r.pc,
                is_inst: true,
                is_store: false,
            });
        }
        if let Some(m) = r.mem {
            self.mem.push(MemRecord {
                pc: r.pc,
                next_pc: r.next_pc,
                addr: m.addr,
                is_inst: false,
                is_store: m.is_store,
            });
        }
        if let Some(b) = r.branch {
            self.branches.push(BranchRecord {
                pc: r.pc,
                next_pc: r.next_pc,
                target: b.target,
                kind: b.kind,
                taken: b.taken,
            });
        }
        self.appended = (self.mem.len() + self.branches.len()) as u64;
        let bytes = self.approx_bytes();
        self.peak_bytes = self.peak_bytes.max(bytes);
        if let Some(budget) = self.budget {
            if bytes > budget {
                self.mem.clear();
                self.branches.clear();
                self.truncated = true;
            }
        }
    }
}

/// A retired stream from a real workload.
fn workload_stream(bench: Benchmark, n: u64) -> Vec<Retired> {
    let program = tiny(bench);
    let mut cpu = Cpu::new(&program).unwrap();
    (0..n).map(|_| cpu.step().unwrap()).collect()
}

/// A deterministic adversarial stream: synthetic records with 64-bit PCs,
/// mismatched fetch addresses, non-sequential data next_pcs, and branches
/// whose next_pc contradicts their outcome — everything the packed
/// derivations cannot represent inline and must spill losslessly.
fn adversarial_stream(n: u64) -> Vec<Retired> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let kinds = [
        CtrlKind::CondBranch,
        CtrlKind::Jump,
        CtrlKind::Call,
        CtrlKind::IndirectCall,
        CtrlKind::Return,
        CtrlKind::IndirectJump,
    ];
    (0..n)
        .map(|seq| {
            let r = rng();
            let pc = if r % 5 == 0 { r | (1 << 45) } else { 0x1_0000 + (r % 4096) * 4 };
            let next_pc = if r % 3 == 0 { rng() } else { pc.wrapping_add(4) };
            let mem = (r % 2 == 0).then(|| MemAccess {
                addr: rng() % (1 << 48),
                width: MemWidth::B8,
                is_store: r % 4 == 0,
            });
            let branch = (r % 3 == 0).then(|| BranchRec {
                kind: kinds[(r % 6) as usize],
                taken: r % 2 == 0,
                target: rng() % (1 << 48),
            });
            Retired { seq, pc, next_pc, inst: Inst::new(Op::Add, 0, 0, 0, 0), mem, branch }
        })
        .collect()
}

fn legacy_replay(stream: &[Retired], budget: Option<usize>) -> LegacyLog {
    let mut log = LegacyLog::new(budget);
    for r in stream {
        log.record(r);
    }
    log
}

fn packed_replay(stream: &[Retired], budget: Option<usize>) -> SkipLog {
    let mut log = SkipLog::new(true, true, 0);
    log.set_budget(budget);
    for r in stream {
        log.record(r);
    }
    log
}

/// Full reconstruction state from one log: cache recon stats, every set's
/// MRU-ordered tags at every level, and the predictor's observable state
/// after an eager BP pass.
fn reconstruct_all(log: &SkipLog, pct: Pct) -> (ReconStats, Vec<Vec<u64>>, u64, ReconStats) {
    let mut hier = MemHierarchy::new(HierarchyConfig::paper());
    let cache_stats = reconstruct_caches(&mut hier, log, pct);
    let mut tags = Vec::new();
    for cache in [&hier.l1i, &hier.l1d, &hier.l2] {
        for set in 0..cache.num_sets() {
            tags.push(cache.set_tags_mru_order(set));
        }
    }
    let mut pred = Predictor::new(PredictorConfig::default());
    let mut bp = BpReconstructor::new(&mut pred, log, pct);
    bp.exhaust(&mut pred);
    (cache_stats, tags, pred.gshare.ghr(), bp.stats())
}

#[test]
fn packed_log_materializes_identical_records() {
    for stream in [
        workload_stream(Benchmark::Mcf, 30_000),
        workload_stream(Benchmark::Twolf, 30_000),
        adversarial_stream(5_000),
    ] {
        let legacy = legacy_replay(&stream, None);
        let packed = packed_replay(&stream, None);
        assert_eq!(packed.mem_records().collect::<Vec<_>>(), legacy.mem);
        assert_eq!(packed.branch_records().collect::<Vec<_>>(), legacy.branches);
        assert_eq!(packed.appended(), legacy.appended);
        assert!(!packed.truncated());
    }
}

#[test]
fn reconstruction_outcomes_match_across_representations() {
    // Reconstructing from the directly-recorded packed log and from a
    // packed log rebuilt out of the legacy record vectors must agree on
    // everything observable: ReconStats, final cache tags and LRU order at
    // every level, and the predictor's reconstructed state.
    for stream in [workload_stream(Benchmark::Mcf, 40_000), workload_stream(Benchmark::Gcc, 40_000)]
    {
        let legacy = legacy_replay(&stream, None);
        let packed = packed_replay(&stream, None);
        let from_legacy =
            SkipLog::from_records(legacy.mem.iter().copied(), legacy.branches.iter().copied(), 0);
        for pct in [Pct::new(20), Pct::new(100)] {
            let a = reconstruct_all(&packed, pct);
            let b = reconstruct_all(&from_legacy, pct);
            assert_eq!(a.0, b.0, "cache ReconStats diverged at {pct:?}");
            assert_eq!(a.1, b.1, "cache tags diverged at {pct:?}");
            assert_eq!(a.2, b.2, "reconstructed GHR diverged at {pct:?}");
            assert_eq!(a.3, b.3, "BP ReconStats diverged at {pct:?}");
        }
    }
}

#[test]
fn budget_truncation_decisions_agree() {
    // Express budgets as fractions of each representation's own
    // full-stream byte total: any fraction below 1 must truncate both
    // logs, any fraction at or above 1 must truncate neither — the
    // degradation *decision* is representation-independent.
    for stream in [workload_stream(Benchmark::Twolf, 20_000), adversarial_stream(4_000)] {
        let legacy_total = legacy_replay(&stream, None).approx_bytes();
        let packed_total = packed_replay(&stream, None).approx_bytes();
        for (num, den) in [(1usize, 4usize), (1, 2), (1, 1), (2, 1)] {
            let legacy = legacy_replay(&stream, Some(legacy_total * num / den));
            let packed = packed_replay(&stream, Some(packed_total * num / den));
            assert_eq!(
                legacy.truncated,
                packed.truncated(),
                "truncation decision diverged at {num}/{den} of the full stream"
            );
            assert_eq!(legacy.truncated, num < den);
            if legacy.truncated {
                assert!(packed.is_empty() && packed.appended() > 0);
                assert!(legacy.mem.is_empty() && legacy.appended > 0);
            }
        }
    }
}

#[test]
fn packed_log_halves_resident_bytes_on_real_streams() {
    for bench in [Benchmark::Mcf, Benchmark::Twolf, Benchmark::Gcc] {
        let stream = workload_stream(bench, 50_000);
        let legacy = legacy_replay(&stream, None);
        let packed = packed_replay(&stream, None);
        let ratio = legacy.peak_bytes as f64 / packed.peak_bytes() as f64;
        assert!(
            ratio >= 2.0,
            "{bench:?}: packed log must halve resident bytes, got {ratio:.2}x \
             ({} -> {})",
            legacy.peak_bytes,
            packed.peak_bytes()
        );
    }
}
