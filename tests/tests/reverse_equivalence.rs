//! Equivalence properties of reverse reconstruction against forward
//! functional warming, at the full-hierarchy level.

use rsr_branch::{Predictor, PredictorConfig};
use rsr_cache::{HierAccess, HierarchyConfig, MemHierarchy};
use rsr_core::{reconstruct_caches, Pct, SkipLog};
use rsr_func::Cpu;
use rsr_integration::tiny;
use rsr_workloads::Benchmark;

/// Forward-warm a hierarchy and log the same stream; reconstruct a second
/// hierarchy from the log.
fn warm_and_reconstruct(bench: Benchmark, insts: u64) -> (MemHierarchy, MemHierarchy) {
    let program = tiny(bench);
    let mut fwd_cpu = Cpu::new(&program).unwrap();
    let mut log_cpu = Cpu::new(&program).unwrap();
    let mut fwd = MemHierarchy::new(HierarchyConfig::paper());
    let mut rev = MemHierarchy::new(HierarchyConfig::paper());
    let mut log = SkipLog::new(true, false, 0);
    for _ in 0..insts {
        let r = fwd_cpu.step().unwrap();
        fwd.warm_access(r.pc, HierAccess::Fetch);
        if let Some(m) = r.mem {
            fwd.warm_access(m.addr, if m.is_store { HierAccess::Store } else { HierAccess::Load });
        }
        let r2 = log_cpu.step().unwrap();
        assert_eq!(r.pc, r2.pc, "functional simulation must be deterministic");
        log.record(&r2);
    }
    reconstruct_caches(&mut rev, &log, Pct::new(100));
    (fwd, rev)
}

/// The L1I sees only fetches (no stores, no allocation asymmetry), so from
/// a cold start reverse reconstruction must reproduce forward warming
/// *exactly*, set by set, including LRU order.
#[test]
fn l1i_reverse_equals_forward_exactly() {
    for bench in [Benchmark::Gcc, Benchmark::Perl, Benchmark::Vortex] {
        let (fwd, rev) = warm_and_reconstruct(bench, 60_000);
        for set in 0..fwd.l1i.num_sets() {
            assert_eq!(
                fwd.l1i.set_tags_mru_order(set),
                rev.l1i.set_tags_mru_order(set),
                "{bench}: L1I set {set} diverged"
            );
        }
    }
}

/// For the L1D the paper's reconstruction deliberately deviates from
/// forward WTNA behavior (logged writes allocate). Every line that forward
/// warming holds must still be present after reverse reconstruction — the
/// deviation only ever *adds* blocks.
#[test]
fn l1d_reverse_superset_of_forward() {
    for bench in [Benchmark::Twolf, Benchmark::Parser] {
        let (fwd, rev) = warm_and_reconstruct(bench, 60_000);
        for set in 0..fwd.l1d.num_sets() {
            let fwd_tags = fwd.l1d.set_tags_mru_order(set);
            let rev_tags = rev.l1d.set_tags_mru_order(set);
            // Forward-resident tags that reverse reconstruction dropped
            // can only be victims of write-allocated blocks; on read-heavy
            // sets the tag sets coincide. Check MRU (the most important
            // block for the next cluster) whenever the set is nonempty.
            if let Some(&mru) = fwd_tags.first() {
                assert!(
                    rev_tags.contains(&mru),
                    "{bench}: set {set} lost forward MRU tag {mru:#x}"
                );
            }
        }
    }
}

/// A loads-only trace (no write-allocate asymmetry) reconstructs the L1D
/// exactly.
#[test]
fn loads_only_l1d_reverse_equals_forward() {
    use rsr_isa::{Asm, Reg};
    // A generated loads-only walker over 256 KB.
    let mut a = Asm::new();
    let buf = a.data_zeros(256 * 1024);
    a.la(Reg::S1, buf);
    a.li(Reg::S0, 0x9e3779b97f4a7c15u64 as i64);
    let top = a.bind_new("top");
    a.slli(Reg::T0, Reg::S0, 13);
    a.xor(Reg::S0, Reg::S0, Reg::T0);
    a.srli(Reg::T0, Reg::S0, 7);
    a.xor(Reg::S0, Reg::S0, Reg::T0);
    a.slli(Reg::T0, Reg::S0, 17);
    a.xor(Reg::S0, Reg::S0, Reg::T0);
    a.li(Reg::T1, (256 * 1024 - 8) as i64);
    a.and(Reg::T0, Reg::S0, Reg::T1);
    a.andi(Reg::T0, Reg::T0, !7);
    a.add(Reg::T0, Reg::T0, Reg::S1);
    a.ld(Reg::T2, 0, Reg::T0);
    a.j(top);
    let program = a.finish().unwrap();

    let mut cpu = Cpu::new(&program).unwrap();
    let mut fwd = MemHierarchy::new(HierarchyConfig::paper());
    let mut rev = MemHierarchy::new(HierarchyConfig::paper());
    let mut log = SkipLog::new(true, false, 0);
    for _ in 0..80_000 {
        let r = cpu.step().unwrap();
        fwd.warm_access(r.pc, HierAccess::Fetch);
        if let Some(m) = r.mem {
            assert!(!m.is_store, "loads-only workload");
            fwd.warm_access(m.addr, HierAccess::Load);
        }
        log.record(&r);
    }
    reconstruct_caches(&mut rev, &log, Pct::new(100));
    for set in 0..fwd.l1d.num_sets() {
        assert_eq!(
            fwd.l1d.set_tags_mru_order(set),
            rev.l1d.set_tags_mru_order(set),
            "L1D set {set} diverged"
        );
    }
}

/// GHR reconstruction: after BP reconstruction, the global history register
/// must equal the last `hist_bits` conditional outcomes of the region.
#[test]
fn ghr_matches_forward_history() {
    let program = tiny(Benchmark::Twolf);
    let mut cpu = Cpu::new(&program).unwrap();
    let mut log = SkipLog::new(false, true, 0);
    let mut outcomes = Vec::new();
    for _ in 0..30_000 {
        let r = cpu.step().unwrap();
        if let Some(b) = r.branch {
            if b.kind == rsr_isa::CtrlKind::CondBranch {
                outcomes.push(b.taken);
            }
        }
        log.record(&r);
    }
    let mut pred = Predictor::new(PredictorConfig::paper());
    let _recon = rsr_core::BpReconstructor::new(&mut pred, &log, Pct::new(100));
    let bits = pred.gshare.hist_bits() as usize;
    let mut expect = 0u64;
    for &t in outcomes.iter().rev().take(bits).collect::<Vec<_>>().iter().rev() {
        expect = (expect << 1) | *t as u64;
    }
    assert_eq!(pred.gshare.ghr(), expect & pred.gshare.ghr_mask());
}
