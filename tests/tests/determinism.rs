//! Determinism and sampling-bias-control guarantees.

use rsr_core::{Pct, RunSpec, SamplingRegimen, Schedule, WarmupPolicy};
use rsr_integration::{machine, sample, tiny};
use rsr_workloads::Benchmark;

const TOTAL: u64 = 200_000;

#[test]
fn sampled_runs_are_bit_deterministic() {
    let program = tiny(Benchmark::Perl);
    let regimen = SamplingRegimen::new(8, 500);
    let policy = WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(40) };
    let a = sample(&program, regimen, TOTAL, policy, 5).unwrap();
    let b = sample(&program, regimen, TOTAL, policy, 5).unwrap();
    assert_eq!(a.clusters.values(), b.clusters.values());
    assert_eq!(a.hot_insts, b.hot_insts);
    assert_eq!(a.recon, b.recon);
}

#[test]
fn schedule_seed_controls_cluster_positions() {
    let r = SamplingRegimen::new(12, 400);
    let s1 = Schedule::generate(r, TOTAL, 1);
    let s2 = Schedule::generate(r, TOTAL, 1);
    let s3 = Schedule::generate(r, TOTAL, 2);
    assert_eq!(s1, s2);
    assert_ne!(s1, s3);
}

#[test]
fn policies_see_identical_cluster_windows() {
    // The paper holds cluster positions fixed across methods so the
    // sampling bias is constant; verify via the skip accounting.
    let program = tiny(Benchmark::Ammp);
    let regimen = SamplingRegimen::new(8, 500);
    let outs: Vec<_> = [
        WarmupPolicy::None,
        WarmupPolicy::Smarts { cache: true, bp: true },
        WarmupPolicy::FixedPeriod { pct: Pct::new(40) },
        WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
    ]
    .into_iter()
    .map(|p| sample(&program, regimen, TOTAL, p, 77).unwrap())
    .collect();
    for o in &outs[1..] {
        assert_eq!(o.skipped_insts, outs[0].skipped_insts);
        assert_eq!(o.hot_insts, outs[0].hot_insts);
    }
}

#[test]
fn full_runs_are_deterministic_across_processes_inputs() {
    let program = tiny(Benchmark::Art);
    let machine = machine();
    let spec = RunSpec::new(&program, &machine).total_insts(100_000);
    let a = spec.run_full().unwrap();
    let b = spec.run_full().unwrap();
    assert_eq!(a.stats, b.stats);
}

#[test]
fn workload_scale_changes_program_but_not_determinism() {
    use rsr_workloads::WorkloadParams;
    let p1 = Benchmark::Mcf.build(&WorkloadParams { scale: 0.03, seed: 9 });
    let p2 = Benchmark::Mcf.build(&WorkloadParams { scale: 0.03, seed: 9 });
    let p3 = Benchmark::Mcf.build(&WorkloadParams { scale: 0.06, seed: 9 });
    assert_eq!(p1, p2);
    assert_ne!(p1.data().len(), p3.data().len());
}
