//! The service fault matrix: every failure mode the job daemon is
//! specified to survive, each mapped to a documented typed status.
//!
//! | fault | typed status |
//! |-------|--------------|
//! | worker panic, budget left | `Done` after a supervised retry |
//! | worker panic, budget spent | `Failed { class: Panic }` |
//! | corrupt cache entry | quarantine + `Done { source: Recomputed }` |
//! | deadline exceeded (stalled worker) | `Failed { class: Deadline }` |
//! | queue overflow | `Overloaded { inflight, limit }` |
//! | stalled job, no deadline | `Done`, wall ≥ the injected stall |
//! | kill mid-queue | journal resume: pending jobs re-run on restart |
//!
//! Plus the service's core contract: a cache hit is *bit-identical* to a
//! fresh standalone [`RunSpec::run`] of the same spec, and identical
//! in-flight submissions dedupe onto one run. Property tests at the
//! bottom pin the wire protocol and the on-disk cache entry format,
//! including adversarial truncation and byte flips rejected as typed
//! errors.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rsr_core::{FaultKind, FaultPlan, Pct, ReconStats, RunSpec, WarmupPolicy, STALL_JOB_DELAY};
use rsr_integration::tiny;
use rsr_serve::{
    decode_entry, encode_entry, request, CacheError, CachedOutcome, Daemon, FailClass, JobSpec,
    Lookup, Request, Response, ResultCache, ResultSource, ServeConfig,
};
use rsr_workloads::Benchmark;

/// Workload build scale shared by the daemons under test and the
/// standalone reference runs ([`tiny`] uses the same factor).
const SCALE: f64 = 0.05;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rsr-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The standard small job: twolf, 8×300 clusters over 100 k instructions.
fn job(seed: u64) -> JobSpec {
    JobSpec {
        n_clusters: 8,
        cluster_len: 300,
        total_insts: 100_000,
        seed,
        policy: WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(20) },
        ..JobSpec::for_bench(Benchmark::Twolf)
    }
}

fn config(dir: &PathBuf) -> ServeConfig {
    let mut cfg = ServeConfig::new(dir);
    cfg.scale = SCALE;
    cfg
}

fn submit(addr: &str, job: &JobSpec, wait: bool) -> Response {
    request(addr, &Request::Submit { job: job.clone(), wait }).expect("daemon reachable")
}

fn wait_settled(daemon: &Daemon) {
    let t = Instant::now();
    loop {
        let s = daemon.stats();
        if s.pending == 0 && s.running == 0 {
            return;
        }
        assert!(t.elapsed() < Duration::from_secs(30), "daemon never settled: {s:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn cache_hit_is_bit_identical_to_a_standalone_run() {
    let dir = scratch("hit");
    let daemon = Daemon::start(config(&dir)).expect("daemon starts");
    let addr = daemon.local_addr().to_string();
    let spec = job(7);

    let (hash, cold_ipc) = match submit(&addr, &spec, true) {
        Response::Done { hash, source: ResultSource::Computed, attempts: 1, est_ipc, .. } => {
            (hash, est_ipc)
        }
        other => panic!("cold submission answered {other:?}"),
    };
    match submit(&addr, &spec, true) {
        Response::Done { source: ResultSource::CacheHit, attempts: 0, est_ipc, .. } => {
            assert_eq!(est_ipc.to_bits(), cold_ipc.to_bits(), "hit drifted from the computed run");
        }
        other => panic!("repeat submission answered {other:?}"),
    }

    // The strong form: the on-disk entry matches a fresh standalone run
    // field-for-field (every cluster, every counter), not just the IPC.
    let program = tiny(Benchmark::Twolf);
    let standalone = RunSpec::from_parts(
        rsr_serve::job_cold_spec(&spec, &program),
        rsr_serve::job_detail_spec(&spec).threads(2),
    )
    .run()
    .expect("standalone run");
    assert_eq!(
        rsr_serve::job_content_hash(&spec, &program).expect("hashable"),
        hash,
        "wire hash must match the locally computed content address"
    );
    let cached = match ResultCache::open(&dir).expect("cache opens").lookup(hash) {
        Ok(Lookup::Hit(c)) => c,
        other => panic!("entry lookup answered {other:?}"),
    };
    assert!(cached.matches(&standalone), "cached entry diverged from a fresh standalone run");
    assert_eq!(cached.est_ipc().to_bits(), standalone.est_ipc().to_bits());

    let stats = daemon.drain();
    assert_eq!((stats.completed, stats.cache_hits, stats.failed), (1, 1, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_panic_heals_within_budget_and_fails_typed_without() {
    // Budget left: the panic consumes one supervised attempt, the retry
    // completes, and nothing about the result betrays the detour.
    let dir = scratch("panic-heal");
    let mut cfg = config(&dir);
    cfg.fault_plan = FaultPlan::new().with(FaultKind::WorkerPanic, 0);
    cfg.max_job_retries = 1;
    cfg.backoff_base = Duration::from_millis(1);
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let addr = daemon.local_addr().to_string();
    match submit(&addr, &job(1), true) {
        Response::Done { source: ResultSource::Computed, attempts: 2, .. } => {}
        other => panic!("supervised retry answered {other:?}"),
    }
    let stats = daemon.drain();
    assert_eq!((stats.completed, stats.failed, stats.retries), (1, 0, 1));
    let _ = std::fs::remove_dir_all(&dir);

    // Budget spent: the panic surfaces as a typed failure, not a hang or
    // a poisoned daemon.
    let dir = scratch("panic-typed");
    let mut cfg = config(&dir);
    cfg.fault_plan = FaultPlan::new().with_repeated(FaultKind::WorkerPanic, 0, 5);
    cfg.max_job_retries = 1;
    cfg.backoff_base = Duration::from_millis(1);
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let addr = daemon.local_addr().to_string();
    match submit(&addr, &job(1), true) {
        Response::Failed { class: FailClass::Panic, attempts: 2, message, .. } => {
            assert!(!message.is_empty());
        }
        other => panic!("exhausted retries answered {other:?}"),
    }
    // The daemon survives its worker's panics: the next job computes.
    match submit(&addr, &job(2), true) {
        Response::Done { source: ResultSource::Computed, .. } => {}
        other => panic!("post-panic submission answered {other:?}"),
    }
    let stats = daemon.drain();
    assert_eq!((stats.completed, stats.failed), (1, 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entry_is_quarantined_and_recomputed() {
    let dir = scratch("corrupt");
    let mut cfg = config(&dir);
    cfg.fault_plan = FaultPlan::new().with(FaultKind::CorruptCacheEntry, 0);
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let addr = daemon.local_addr().to_string();
    let spec = job(3);

    let cold_ipc = match submit(&addr, &spec, true) {
        Response::Done { source: ResultSource::Computed, est_ipc, .. } => est_ipc,
        other => panic!("cold submission answered {other:?}"),
    };
    // The store was corrupted in flight; the next request must detect it,
    // quarantine the entry, and recompute — bit-identically.
    let (hash, recomputed_ipc) = match submit(&addr, &spec, true) {
        Response::Done { hash, source: ResultSource::Recomputed, est_ipc, .. } => (hash, est_ipc),
        other => panic!("corrupted-entry submission answered {other:?}"),
    };
    assert_eq!(recomputed_ipc.to_bits(), cold_ipc.to_bits(), "recompute drifted");
    let cache = ResultCache::open(&dir).expect("cache opens");
    assert!(cache.quarantine_path(hash).exists(), "corrupt entry must be kept for post-mortem");
    // The recomputed store is clean: third time is a plain hit.
    match submit(&addr, &spec, true) {
        Response::Done { source: ResultSource::CacheHit, .. } => {}
        other => panic!("post-recompute submission answered {other:?}"),
    }
    let stats = daemon.drain();
    assert_eq!((stats.completed, stats.quarantined, stats.cache_hits), (2, 1, 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_job_trips_its_deadline_typed() {
    let dir = scratch("deadline");
    let mut cfg = config(&dir);
    cfg.fault_plan = FaultPlan::new().with(FaultKind::StallJob, 0);
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let addr = daemon.local_addr().to_string();
    // The deadline is anchored at worker pickup, so the injected stall
    // (150 ms) consumes a 40 ms budget before the run even starts.
    let mut spec = job(4);
    spec.deadline_ms = Some(40);
    match submit(&addr, &spec, true) {
        Response::Failed { class: FailClass::Deadline, attempts: 0, .. } => {}
        other => panic!("stalled job answered {other:?}"),
    }
    // Deadlines are guards, not part of the content address: the retry
    // without a stall (fault consumed) computes and would serve any
    // deadline-carrying resubmission of the same spec from cache.
    match submit(&addr, &spec, true) {
        Response::Done { source: ResultSource::Computed, .. } => {}
        other => panic!("post-stall submission answered {other:?}"),
    }
    let stats = daemon.drain();
    assert_eq!((stats.completed, stats.failed), (1, 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_job_without_deadline_just_takes_longer() {
    let dir = scratch("stall");
    let mut cfg = config(&dir);
    cfg.fault_plan = FaultPlan::new().with(FaultKind::StallJob, 0);
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let addr = daemon.local_addr().to_string();
    let t = Instant::now();
    match submit(&addr, &job(5), true) {
        Response::Done { source: ResultSource::Computed, attempts: 1, .. } => {}
        other => panic!("stalled job answered {other:?}"),
    }
    assert!(t.elapsed() >= STALL_JOB_DELAY, "the injected stall must actually have happened");
    let stats = daemon.drain();
    assert_eq!((stats.completed, stats.failed), (1, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_overflow_sheds_typed_overload() {
    let dir = scratch("overflow");
    let mut cfg = config(&dir);
    cfg.workers = 1;
    cfg.queue_depth = 1; // admission limit: 1 running + 1 queued
    cfg.fault_plan = FaultPlan::new().with(FaultKind::StallJob, 0);
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let addr = daemon.local_addr().to_string();
    // The stall pins the first job in the worker for 150 ms; the second
    // fills the queue; the third must be shed, typed, immediately.
    assert!(matches!(submit(&addr, &job(10), false), Response::Queued { .. }));
    assert!(matches!(submit(&addr, &job(11), false), Response::Queued { .. }));
    match submit(&addr, &job(12), false) {
        Response::Overloaded { inflight: 2, limit: 2 } => {}
        other => panic!("overflow submission answered {other:?}"),
    }
    wait_settled(&daemon);
    let stats = daemon.drain();
    assert_eq!((stats.completed, stats.shed), (2, 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identical_inflight_submissions_dedupe_onto_one_run() {
    let dir = scratch("dedupe");
    let mut cfg = config(&dir);
    cfg.fault_plan = FaultPlan::new().with(FaultKind::StallJob, 0);
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let addr = daemon.local_addr().to_string();
    let spec = job(6);
    let first = {
        let addr = addr.clone();
        let spec = spec.clone();
        std::thread::spawn(move || submit(&addr, &spec, true))
    };
    // Arrive while the first submission is pinned by its stall.
    std::thread::sleep(Duration::from_millis(40));
    let second = submit(&addr, &spec, true);
    let first = first.join().expect("first submitter");
    for (who, response) in [("first", first), ("second", second)] {
        match response {
            Response::Done { source: ResultSource::Computed, .. } => {}
            other => panic!("{who} deduped submission answered {other:?}"),
        }
    }
    let stats = daemon.drain();
    assert_eq!((stats.completed, stats.deduped), (1, 1), "one run, two satisfied waiters");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_mid_queue_resumes_from_the_journal_on_restart() {
    let dir = scratch("restart");
    let mut cfg = config(&dir);
    cfg.workers = 1;
    cfg.fault_plan = FaultPlan::new().with(FaultKind::StallJob, 0);
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let addr = daemon.local_addr().to_string();
    let seeds = [20u64, 21, 22];
    for seed in seeds {
        assert!(matches!(submit(&addr, &job(seed), false), Response::Queued { .. }));
    }
    // The simulated crash: no drain, queued jobs left pending in the
    // journal. (The stalled in-flight job, if any, settles on the way
    // down — a real kill would leave it pending too, which only means
    // one more resumed job below.)
    daemon.abort();

    let daemon = Daemon::start(config(&dir)).expect("daemon restarts");
    let resumed = daemon.stats().resumed;
    assert!(
        (2..=3).contains(&resumed),
        "journal must carry the admitted-but-unsettled jobs, got {resumed}"
    );
    wait_settled(&daemon);
    // Every admitted job eventually computed — across the crash — and is
    // now served from cache.
    let addr = daemon.local_addr().to_string();
    for seed in seeds {
        match submit(&addr, &job(seed), true) {
            Response::Done { source: ResultSource::CacheHit, .. } => {}
            other => panic!("post-restart submission ({seed}) answered {other:?}"),
        }
    }
    let stats = daemon.drain();
    assert_eq!(stats.completed, resumed, "every resumed job settled");
    assert_eq!(stats.cache_hits, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_stops_the_daemon_and_later_requests_are_refused() {
    let dir = scratch("drain");
    let daemon = Daemon::start(config(&dir)).expect("daemon starts");
    let addr = daemon.local_addr().to_string();
    match submit(&addr, &job(8), true) {
        Response::Done { .. } => {}
        other => panic!("submission answered {other:?}"),
    }
    match request(&addr, &Request::Drain).expect("drain reaches the daemon") {
        Response::Draining { settled: 1 } => {}
        other => panic!("drain answered {other:?}"),
    }
    let stats = daemon.wait();
    assert_eq!((stats.completed, stats.pending, stats.running), (1, 0, 0));
    // A drained daemon is gone: connections are refused, not queued.
    assert!(request(&addr, &Request::Stats).is_err(), "stopped daemon must refuse connections");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Property tests: wire protocol and cache entry format.
// ---------------------------------------------------------------------------

/// `Option`-valued strategy (the vendored proptest has no `option::of`).
fn opt<S: Strategy>(s: S) -> impl Strategy<Value = Option<S::Value>> {
    (any::<bool>(), s).prop_map(|(some, v)| some.then_some(v))
}

fn arb_policy() -> impl Strategy<Value = WarmupPolicy> {
    (0usize..6, 1u8..=100).prop_map(|(kind, pct)| {
        let pct = Pct::new(pct);
        match kind {
            0 => WarmupPolicy::None,
            1 => WarmupPolicy::FixedPeriod { pct },
            2 => WarmupPolicy::Smarts { cache: true, bp: pct.value().is_multiple_of(2) },
            3 => WarmupPolicy::Reverse { cache: pct.value().is_multiple_of(2), bp: true, pct },
            4 => WarmupPolicy::Mrrl { coverage: pct },
            _ => WarmupPolicy::Blrl { coverage: pct },
        }
    })
}

fn arb_job() -> impl Strategy<Value = JobSpec> {
    (
        (0usize..Benchmark::ALL.len(), 1usize..64, 1u64..5000, 1u64..10_000_000, any::<u64>()),
        arb_policy(),
        (
            opt(1u64..1024),
            opt(1u32..30),
            opt(1u64..10_000_000),
            opt(any::<u64>()),
            opt(1u64..100_000),
        ),
    )
        .prop_map(
            |(
                (bench, n_clusters, cluster_len, total_insts, seed),
                policy,
                (l1d_kb, ghr_bits, shard_span, log_budget, deadline_ms),
            )| JobSpec {
                bench: Benchmark::ALL[bench],
                n_clusters,
                cluster_len,
                total_insts,
                seed,
                policy,
                l1d_kb,
                ghr_bits,
                shard_span,
                log_budget,
                deadline_ms,
            },
        )
}

fn arb_outcome() -> impl Strategy<Value = CachedOutcome> {
    (
        arb_policy(),
        // Raw bit patterns so the round-trip is pinned for NaNs, infinities,
        // subnormals, and negative zero too.
        proptest::collection::vec(any::<u64>(), 1..40),
        proptest::collection::vec(any::<u64>(), 1..40),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|(policy, ipc_bits, cpi_bits, counters, recon)| CachedOutcome {
            policy,
            cluster_ipcs: ipc_bits.into_iter().map(f64::from_bits).collect(),
            cluster_cpis: cpi_bits.into_iter().map(f64::from_bits).collect(),
            hot_insts: counters.0,
            skipped_insts: counters.1,
            log_bytes_peak: counters.2,
            log_records: counters.3,
            warm_updates: counters.4,
            recon: ReconStats {
                mem_scanned: recon.0,
                cache_inserted: recon.1,
                cache_marked: recon.2,
                branch_scanned: recon.3,
                pht_exact: recon.4,
                ..ReconStats::default()
            },
            clusters_degraded: counters.0 % 7,
        })
}

/// Bit-pattern equality for [`CachedOutcome`]s (plain `==` would make two
/// NaN-carrying outcomes unequal even when the bytes agree).
fn same_outcome(a: &CachedOutcome, b: &CachedOutcome) -> bool {
    encode_entry(0, a) == encode_entry(0, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any job round-trips the wire exactly, and the canonical encoding —
    /// the journal and content-address form — is a fixed point.
    #[test]
    fn job_wire_round_trip(job in arb_job()) {
        let encoded = rsr_serve::json::to_string(&job.to_json());
        let parsed = JobSpec::from_json(&rsr_serve::json::parse(&encoded).unwrap()).unwrap();
        prop_assert_eq!(&parsed, &job);
        let canonical = job.canonical_json();
        let reparsed = JobSpec::from_json(&rsr_serve::json::parse(&canonical).unwrap()).unwrap();
        prop_assert_eq!(reparsed.canonical_json(), canonical);
    }

    /// Submit requests round-trip with their wait flag intact.
    #[test]
    fn request_wire_round_trip(job in arb_job(), wait in any::<bool>()) {
        let req = Request::Submit { job, wait };
        let parsed = Request::parse(&req.encode()).unwrap();
        prop_assert_eq!(parsed, req);
    }

    /// Any outcome round-trips the entry format byte-exactly.
    #[test]
    fn cache_entry_round_trip(outcome in arb_outcome(), hash in any::<u64>()) {
        let bytes = encode_entry(hash, &outcome);
        let decoded = decode_entry(&bytes, hash).unwrap();
        prop_assert!(same_outcome(&decoded, &outcome));
    }

    /// Every single-byte flip is rejected as a typed corruption error —
    /// never a panic, never a silently different outcome.
    #[test]
    fn cache_entry_rejects_any_byte_flip(
        outcome in arb_outcome(),
        hash in any::<u64>(),
        at in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut bytes = encode_entry(hash, &outcome);
        let at = (at % bytes.len() as u64) as usize;
        bytes[at] ^= 1 << bit;
        match decode_entry(&bytes, hash) {
            Err(CacheError::Corrupt(why)) => prop_assert!(!why.is_empty()),
            Err(CacheError::Io(e)) => prop_assert!(false, "io error for in-memory decode: {e}"),
            Ok(decoded) => prop_assert!(
                false,
                "flipped byte {at} bit {bit} decoded anyway: {decoded:?}"
            ),
        }
    }

    /// Every truncation is rejected as a typed corruption error.
    #[test]
    fn cache_entry_rejects_any_truncation(
        outcome in arb_outcome(),
        hash in any::<u64>(),
        keep in any::<u64>(),
    ) {
        let bytes = encode_entry(hash, &outcome);
        let keep = (keep % bytes.len() as u64) as usize; // always a strict prefix
        match decode_entry(&bytes[..keep], hash) {
            Err(CacheError::Corrupt(why)) => prop_assert!(!why.is_empty()),
            Err(CacheError::Io(e)) => prop_assert!(false, "io error for in-memory decode: {e}"),
            Ok(decoded) => prop_assert!(false, "truncated to {keep} decoded anyway: {decoded:?}"),
        }
    }

    /// A wrong magic, version, or owner hash is rejected typed.
    #[test]
    fn cache_entry_rejects_wrong_owner(outcome in arb_outcome(), hash in any::<u64>()) {
        let bytes = encode_entry(hash, &outcome);
        match decode_entry(&bytes, hash.wrapping_add(1)) {
            Err(CacheError::Corrupt(why)) => {
                prop_assert!(why.contains("wanted"), "unexpected reason: {why}")
            }
            other => prop_assert!(false, "foreign entry accepted: {other:?}"),
        }
    }
}
