//! Property-based equivalence of the two functional cores.
//!
//! [`Cpu::step`] is the bit-identity reference oracle: one instruction at
//! a time through the full fetch/decode/execute path. [`Cpu::step_n`] is
//! the production fast path: superblock dispatch over the predecoded
//! semantic cache with the flat software TLB underneath. The sampled-
//! simulation results (est_ipc, the skip logs, every reconstructed
//! structure) are only trustworthy if the two agree *exactly* — same
//! retired stream, same architectural state at every boundary, same
//! memory image, same faults. These properties drive randomized programs
//! through both and require bit-identity, leaning on the stream shapes
//! the fast path optimizes: straight-line runs, block terminators of
//! every kind, page-crossing memory traffic, division edge cases, and
//! halts landing mid-block.

use proptest::prelude::*;
use rsr_func::{Cpu, ExecError, Retired, PAGE_BYTES};
use rsr_isa::{Asm, Freg, Program, Reg};

/// Runs the reference core for at most `n` instructions, returning the
/// retired stream and the terminating error, if one fired early.
fn reference_stream(program: &Program, n: u64) -> (Vec<Retired>, Option<ExecError>, Cpu) {
    let mut cpu = Cpu::new(program).expect("loads");
    let mut stream = Vec::new();
    let mut err = None;
    for _ in 0..n {
        match cpu.step() {
            Ok(r) => stream.push(r),
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    (stream, err, cpu)
}

/// Runs the fast core for at most `n` instructions through `step_n`,
/// returning the same triple.
fn fast_stream(program: &Program, n: u64) -> (Vec<Retired>, Option<ExecError>, Cpu) {
    let mut cpu = Cpu::new(program).expect("loads");
    let mut stream = Vec::new();
    let err = cpu.step_n(n, |r| stream.push(*r)).err();
    (stream, err, cpu)
}

/// Bit-level architectural state comparison. `ArchState`'s derived
/// `PartialEq` compares `fregs` as IEEE doubles, where `NaN != NaN` —
/// but random programs routinely load integer bit patterns into FP
/// registers, and two cores that both hold the same NaN payload are in
/// *identical* states. Compare the raw bits instead.
fn assert_same_arch(a: &Cpu, b: &Cpu) {
    let (sa, sb) = (a.arch_state(), b.arch_state());
    assert_eq!(sa.pc, sb.pc, "pc differs");
    assert_eq!(sa.iregs, sb.iregs, "integer registers differ");
    assert_eq!(sa.icount, sb.icount, "icount differs");
    assert_eq!(sa.halted, sb.halted, "halted flag differs");
    for (i, (fa, fb)) in sa.fregs.iter().zip(&sb.fregs).enumerate() {
        assert_eq!(fa.to_bits(), fb.to_bits(), "f{i} differs");
    }
}

/// Full-image memory comparison: same resident pages, same bytes.
fn assert_same_memory(a: &mut Cpu, b: &mut Cpu) {
    let pa = a.mem().resident_page_nos();
    let pb = b.mem().resident_page_nos();
    assert_eq!(pa, pb, "resident page sets differ");
    for page in pa {
        let addr = page * PAGE_BYTES;
        let va = a.mem_mut().read_vec(addr, PAGE_BYTES as usize);
        let vb = b.mem_mut().read_vec(addr, PAGE_BYTES as usize);
        assert_eq!(va, vb, "page {page:#x} differs");
    }
}

/// A random but guaranteed-terminating program: a bounded counter loop
/// whose body mixes ALU ops, division edge cases, page-crossing loads and
/// stores of every width, floating-point traffic, calls, and forward
/// branches — all the shapes the superblock walker and the TLB path
/// handle specially.
fn build_program(ops: &[u8], iters: u64, edge_seed: u64) -> Program {
    let mut a = Asm::new();
    // Two adjacent zero pages; S1 points 16 bytes before their shared
    // boundary so small positive offsets cross it.
    let buf = a.data_zeros(3 * PAGE_BYTES);
    a.la(Reg::S1, buf + PAGE_BYTES - 16);
    a.la(Reg::S2, buf);
    a.li(Reg::S0, iters as i64);
    // Seed registers with division-edge material.
    a.li(Reg::A0, edge_seed as i64);
    a.li(Reg::A1, i64::MIN);
    a.li(Reg::A2, -1);
    a.li(Reg::A3, 0);
    let top = a.bind_new("top");
    for (k, &op) in ops.iter().enumerate() {
        let r1 = Reg(10 + (op % 8));
        let r2 = Reg(10 + (op / 8 % 8));
        let cross = ((op as i32) % 24) - 4; // offsets straddling the page edge
        match op % 12 {
            0 => {
                a.add(r1, r1, r2);
            }
            1 => {
                a.div(Reg::T1, r1, r2); // includes /0 and MIN/-1 via seeds
                a.rem(Reg::T2, r1, r2);
            }
            2 => {
                a.ld(Reg::T1, cross, Reg::S1);
            }
            3 => {
                a.sd(r1, cross, Reg::S1);
            }
            4 => {
                a.lw(Reg::T1, cross, Reg::S1);
                a.lh(Reg::T2, cross, Reg::S1);
                a.lbu(Reg::T3, cross, Reg::S1);
            }
            5 => {
                a.sw(r1, cross, Reg::S1);
                a.sh(r1, cross + 6, Reg::S1);
                a.sb(r1, cross + 9, Reg::S1);
            }
            6 => {
                // Forward skip over a store — a conditional terminator
                // inside what would otherwise be one straight run.
                let skip = a.new_label(&format!("s{k}"));
                a.beq(r1, r2, skip);
                a.sd(r2, 0, Reg::S2);
                a.bind(skip).unwrap();
            }
            7 => {
                a.mul(r1, r1, r2);
                a.sra(Reg::T1, r1, r2);
            }
            8 => {
                // Call/return pair: jal link + jr, exercising indirect
                // terminators.
                let over = a.new_label(&format!("o{k}"));
                let func = a.new_label(&format!("f{k}"));
                a.jal(Reg::ZERO, over);
                a.bind(func).unwrap();
                a.addi(Reg::T4, Reg::T4, 1);
                a.ret();
                a.bind(over).unwrap();
                a.call(func);
            }
            9 => {
                a.fld(Freg::F1, 0, Reg::S2);
                a.fcvt_d_l(Freg::F2, r1);
                a.fadd(Freg::F3, Freg::F1, Freg::F2);
                a.fsd(Freg::F3, 8, Reg::S2);
                a.fle(Reg::T5, Freg::F1, Freg::F3);
            }
            10 => {
                a.sltu(Reg::T1, r1, r2);
                a.xori(r1, r2, (op as i32) << 2);
            }
            _ => {
                a.slli(Reg::T1, r1, (op % 63) as i32);
                a.srli(Reg::T2, r2, (op % 63) as i32);
            }
        }
    }
    a.addi(Reg::S0, Reg::S0, -1);
    a.bne(Reg::S0, Reg::ZERO, top);
    a.halt();
    a.finish().expect("assembles")
}

fn arb_program() -> impl Strategy<Value = (Vec<u8>, u64, u64)> {
    (proptest::collection::vec(any::<u8>(), 8..96), 1u64..40, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fast core retires the bit-identical stream the reference core
    /// retires — every field of every record — then lands in the same
    /// architectural state with the same memory image, and reports the
    /// same terminating condition (the halt lands wherever the random
    /// body put it, frequently mid-superblock).
    #[test]
    fn step_n_stream_matches_reference((ops, iters, seed) in arb_program()) {
        let program = build_program(&ops, iters, seed);
        let budget = 2_000_000;
        let (rs, re, mut rc) = reference_stream(&program, budget);
        let (fs, fe, mut fc) = fast_stream(&program, budget);
        prop_assert_eq!(rs.len(), fs.len(), "retired counts differ");
        for (i, (a, b)) in rs.iter().zip(&fs).enumerate() {
            prop_assert_eq!(a, b, "retired record {} differs", i);
        }
        prop_assert_eq!(re, fe, "terminating condition differs");
        assert_same_arch(&rc, &fc);
        assert_same_memory(&mut rc, &mut fc);
    }

    /// Tail accuracy: stopping the fast core at an arbitrary instruction
    /// count — including mid-block — leaves exactly the state the same
    /// number of reference steps leaves.
    #[test]
    fn step_n_is_tail_accurate((ops, iters, seed) in arb_program(), cut in any::<u64>()) {
        let program = build_program(&ops, iters, seed);
        let total = {
            let mut cpu = Cpu::new(&program).expect("loads");
            cpu.run(u64::MAX).expect("halts")
        };
        let k = cut % total.max(1);
        let (rs, _, mut rc) = reference_stream(&program, k);
        let mut fc = Cpu::new(&program).expect("loads");
        let mut count = 0u64;
        fc.step_n(k, |_| count += 1).expect("within program");
        prop_assert_eq!(rs.len() as u64, k);
        prop_assert_eq!(count, k);
        assert_same_arch(&rc, &fc);
        assert_same_memory(&mut rc, &mut fc);
    }

    /// Chunked dispatch composes: many random-sized `step_n` calls retire
    /// the same stream as one call, so consumers can slice regions at any
    /// granularity.
    #[test]
    fn step_n_chunks_compose((ops, iters, seed) in arb_program(),
                             chunks in proptest::collection::vec(1u64..500, 1..20)) {
        let program = build_program(&ops, iters, seed);
        let n: u64 = chunks.iter().sum();
        let (one, oe, mut oc) = fast_stream(&program, n);
        let mut cpu = Cpu::new(&program).expect("loads");
        let mut many = Vec::new();
        let mut err = None;
        for c in chunks {
            if let Err(e) = cpu.step_n(c, |r| many.push(*r)) {
                err = Some(e);
                break;
            }
        }
        prop_assert_eq!(one, many);
        prop_assert_eq!(oe, err);
        assert_same_arch(&oc, &cpu);
        assert_same_memory(&mut oc, &mut cpu);
    }
}
