//! The design-space sweep engine: one cold pass, N detailed configs,
//! every per-config outcome bit-identical to its standalone run.
//!
//! `SweepSpec` shares one functional capture (CPU snapshots + sealed skip
//! logs behind `Arc`) across all configs, then replays the detailed half
//! per config through the same `detailed_window` code path the standalone
//! engines use. The contract mirrors the pipeline's: the sweep is a pure
//! wall-clock optimization, so for every config and every parallelism
//! setting — capture/replay threads, standalone pipeline depth,
//! reconstruction workers — the sampled estimate and every deterministic
//! counter must equal the standalone `RunSpec` run of the same cold and
//! detailed halves. Supervision must compose unchanged through the capture
//! pass: worker panics and corrupt checkpoints heal by retry with the
//! same healed outcome, and forced log exhaustion degrades every config's
//! clusters identically.

use rsr_core::{
    ColdSpec, DetailSpec, FaultKind, FaultPlan, MachineConfig, Pct, RunSpec, SampleOutcome,
    SamplingRegimen, Schedule, SimError, SweepOutcome, SweepSpec, WarmupPolicy,
};
use rsr_integration::{machine, tiny};
use rsr_workloads::Benchmark;

const TOTAL: u64 = 250_000;
/// Same scale as `fault_injection.rs` / `pipeline_equivalence.rs`: ~12
/// canonical shards, so 4 capture threads form several worker groups.
const SPAN: u64 = 20_000;
const SEED: u64 = 9;

fn rsr(pct: u8) -> WarmupPolicy {
    WarmupPolicy::Reverse { cache: true, bp: true, pct: Pct::new(pct) }
}

/// A fig7/fig8-style machine variant: scaled L1D and gshare history.
fn variant(l1d_kb: u64, ghr_bits: u32) -> MachineConfig {
    let mut m = machine();
    m.hier.l1d.size_bytes = l1d_kb * 1024;
    m.pred.ghr_bits = ghr_bits;
    m
}

/// The sweep's config axis: four machines × analysis percentages that all
/// share one logging signature (cache + bp), as a real geometry sweep
/// would.
fn config_axis() -> Vec<(String, MachineConfig, WarmupPolicy)> {
    vec![
        ("paper".into(), machine(), rsr(20)),
        ("small-l1d".into(), variant(8, 12), rsr(20)),
        ("big-l1d".into(), variant(128, 12), rsr(20)),
        ("deep-ghr".into(), variant(32, 16), rsr(100)),
    ]
}

fn cold() -> ColdSpec<'static> {
    // Leaked once per process: integration scale, a handful of programs.
    let program: &'static _ = Box::leak(Box::new(tiny(Benchmark::Twolf)));
    ColdSpec::new(program)
        .regimen(SamplingRegimen::new(12, 600))
        .total_insts(TOTAL)
        .seed(SEED)
        .shard_span(SPAN)
}

fn standalone(
    machine: &MachineConfig,
    policy: WarmupPolicy,
    threads: usize,
    depth: usize,
    recon: usize,
) -> SampleOutcome {
    let program = tiny(Benchmark::Twolf);
    RunSpec::new(&program, machine)
        .regimen(SamplingRegimen::new(12, 600))
        .total_insts(TOTAL)
        .seed(SEED)
        .shard_span(SPAN)
        .policy(policy)
        .threads(threads)
        .pipeline_depth(depth)
        .recon_threads(recon)
        .run()
        .expect("standalone run completes")
}

/// Everything deterministic two equivalent runs must agree on (wall-clock,
/// phase times, and retry telemetry legitimately differ).
fn assert_equivalent(a: &SampleOutcome, b: &SampleOutcome, what: &str) {
    assert_eq!(a.clusters.values(), b.clusters.values(), "{what}: IPC clusters drifted");
    assert_eq!(a.cpi_clusters.values(), b.cpi_clusters.values(), "{what}: CPI clusters drifted");
    assert_eq!(a.est_ipc(), b.est_ipc(), "{what}: est_ipc");
    assert_eq!(a.hot_insts, b.hot_insts, "{what}: hot_insts");
    assert_eq!(a.skipped_insts, b.skipped_insts, "{what}: skipped_insts");
    assert_eq!(a.log_records, b.log_records, "{what}: log_records");
    assert_eq!(a.log_bytes_peak, b.log_bytes_peak, "{what}: log_bytes_peak");
    assert_eq!(a.warm_updates, b.warm_updates, "{what}: warm_updates");
    assert_eq!(a.recon, b.recon, "{what}: reconstruction stats");
    assert_eq!(a.clusters_degraded, b.clusters_degraded, "{what}: clusters_degraded");
}

fn sweep_at(threads: usize, depth: usize, recon: usize) -> SweepOutcome {
    sweep_at_replay(threads, depth, recon, 1)
}

fn sweep_at_replay(threads: usize, depth: usize, recon: usize, replay: usize) -> SweepOutcome {
    let mut sweep = SweepSpec::new(cold()).cold_threads(threads).replay_threads(replay);
    for (name, m, policy) in config_axis() {
        sweep = sweep.config(
            name,
            DetailSpec::new(&m)
                .policy(policy)
                .threads(threads)
                .pipeline_depth(depth)
                .recon_threads(recon),
        );
    }
    sweep.run().expect("sweep completes")
}

#[test]
fn sweep_outcomes_are_bit_identical_to_standalone_runs() {
    // The sequential references, one per config.
    let bases: Vec<(String, SampleOutcome)> = config_axis()
        .iter()
        .map(|(name, m, policy)| (name.clone(), standalone(m, *policy, 1, 1, 1)))
        .collect();
    for threads in [1usize, 4] {
        for depth in [1usize, 2] {
            for recon in [1usize, 4] {
                let out = sweep_at(threads, depth, recon);
                assert_eq!(out.configs.len(), bases.len());
                assert!(out.shards > 1, "scenario must be sharded");
                for ((name, base), got) in bases.iter().zip(&out.configs) {
                    assert_eq!(&got.name, name, "config order must be registration order");
                    assert_equivalent(
                        base,
                        &got.outcome,
                        &format!("{name} via sweep at {threads}t x depth {depth} x recon {recon}"),
                    );
                    // The standalone run at the same parallelism agrees too
                    // (the sweep and pipeline contracts compose).
                    let (_, m, policy) =
                        config_axis().into_iter().find(|(n, _, _)| n == name).unwrap();
                    let alone = standalone(&m, policy, threads, depth, recon);
                    assert_equivalent(
                        &alone,
                        &got.outcome,
                        &format!("{name} standalone at {threads}t x depth {depth} x recon {recon}"),
                    );
                }
            }
        }
    }
}

#[test]
fn replay_fanout_is_bit_identical_at_any_width() {
    // The config-parallel replay contract: worker chunks own their
    // configs' state for the whole shard, so per-config outcomes are
    // bit-identical at every fan-out — serial with journaled in-place
    // restore (1), an uneven partition (3 → chunks of 2/1/1), and one
    // config per clone-restoring worker (4). Composed with capture
    // threads and reconstruction workers to cover the full
    // (threads × recon × replay) product the CI smoke also probes.
    let bases: Vec<(String, SampleOutcome)> = config_axis()
        .iter()
        .map(|(name, m, policy)| (name.clone(), standalone(m, *policy, 1, 1, 1)))
        .collect();
    for replay in [1usize, 3, 4] {
        for (threads, recon) in [(1usize, 1usize), (4, 2)] {
            let out = sweep_at_replay(threads, 1, recon, replay);
            assert_eq!(out.replay_threads, replay, "explicit width is honored");
            assert!(out.index_builds > 0, "reverse configs must build indexes");
            assert!(out.index_builds_shared > 0, "shared-geometry configs must share");
            for ((name, base), got) in bases.iter().zip(&out.configs) {
                assert_equivalent(
                    base,
                    &got.outcome,
                    &format!("{name} at replay {replay} ({threads}t x recon {recon})"),
                );
            }
        }
    }
}

#[test]
fn sweep_configs_actually_differ() {
    // Guard against a degenerate sweep where every config reads the same
    // geometry: the machine variants must produce different estimates.
    let out = sweep_at(1, 1, 1);
    let ipcs: Vec<f64> = out.configs.iter().map(|c| c.outcome.est_ipc()).collect();
    assert!(
        ipcs.windows(2).any(|w| w[0] != w[1]),
        "machine variants should not all estimate the same IPC: {ipcs:?}"
    );
}

#[test]
fn none_policy_sweeps_without_logs() {
    let m = machine();
    let sweep = SweepSpec::new(cold())
        .config("none-a", DetailSpec::new(&m).policy(WarmupPolicy::None))
        .config("none-b", DetailSpec::new(&variant(8, 12)).policy(WarmupPolicy::None));
    let out = sweep.run().expect("None-policy sweep completes");
    for c in &out.configs {
        assert_eq!(c.outcome.log_records, 0, "{}: None must not log", c.name);
    }
    let base = standalone(&m, WarmupPolicy::None, 1, 1, 1);
    assert_equivalent(&base, &out.configs[0].outcome, "none-a via sweep");
}

#[test]
fn sweep_validation_rejects_degenerate_specs() {
    let m = machine();
    // No configs at all.
    assert!(matches!(SweepSpec::new(cold()).run(), Err(SimError::Spec(_))));
    // A policy that warms during the skip cannot replay from a shared
    // functional capture.
    let sweep = SweepSpec::new(cold()).config(
        "smarts",
        DetailSpec::new(&m).policy(WarmupPolicy::Smarts { cache: true, bp: true }),
    );
    assert!(matches!(sweep.run(), Err(SimError::Spec(_))));
    // Mixed logging signatures would share the wrong record stream.
    let sweep = SweepSpec::new(cold()).config("both", DetailSpec::new(&m).policy(rsr(20))).config(
        "cache-only",
        DetailSpec::new(&m).policy(WarmupPolicy::Reverse {
            cache: true,
            bp: false,
            pct: Pct::new(20),
        }),
    );
    assert!(matches!(sweep.run(), Err(SimError::Spec(_))));
    // The cold half's own validation runs too.
    let program = tiny(Benchmark::Twolf);
    let bad = ColdSpec::new(&program)
        .schedule(Schedule::generate(SamplingRegimen::new(12, 600), TOTAL, SEED))
        .regimen(SamplingRegimen::new(12, 600));
    assert!(matches!(
        SweepSpec::new(bad).config("x", DetailSpec::new(&m)).run(),
        Err(SimError::Spec(_))
    ));
}

#[test]
fn build_time_validation_rejects_conflicting_runspecs() {
    let program = tiny(Benchmark::Twolf);
    let m = machine();
    let schedule = Schedule::generate(SamplingRegimen::new(12, 600), TOTAL, SEED);
    // schedule + regimen conflict.
    assert!(matches!(
        RunSpec::new(&program, &m)
            .schedule(schedule.clone())
            .regimen(SamplingRegimen::new(12, 600))
            .run(),
        Err(SimError::Spec(_))
    ));
    // schedule + total_insts conflict (the schedule fixes the length).
    assert!(matches!(
        RunSpec::new(&program, &m).schedule(schedule.clone()).total_insts(TOTAL).run(),
        Err(SimError::Spec(_))
    ));
    // The conflicts surface from run_full too (shared validate()).
    assert!(matches!(
        RunSpec::new(&program, &m)
            .schedule(schedule)
            .regimen(SamplingRegimen::new(12, 600))
            .run_full(),
        Err(SimError::Spec(_))
    ));
    // A regimen without a run length is a build-time error.
    assert!(matches!(
        RunSpec::new(&program, &m).regimen(SamplingRegimen::new(12, 600)).run(),
        Err(SimError::Spec(_))
    ));
}

#[test]
fn fault_matrix_heals_identically_through_the_sweep_path() {
    let bases: Vec<(String, SampleOutcome)> = config_axis()
        .iter()
        .map(|(name, m, policy)| (name.clone(), standalone(m, *policy, 1, 1, 1)))
        .collect();

    let faulted_sweep = |plan: FaultPlan, retries: u32| {
        let mut sweep =
            SweepSpec::new(cold().fault_plan(plan).max_shard_retries(retries)).cold_threads(4);
        for (name, m, policy) in config_axis() {
            sweep = sweep.config(name, DetailSpec::new(&m).policy(policy).threads(4));
        }
        sweep.run()
    };

    // Worker panic in capture group 1: healed from the pristine
    // checkpoint, every config's outcome unchanged.
    let healed = faulted_sweep(FaultPlan::new().with(FaultKind::WorkerPanic, 1), 1)
        .expect("worker panic heals in the capture pass");
    assert_eq!(healed.shard_retries, 1, "exactly one capture retry");
    for ((name, base), got) in bases.iter().zip(&healed.configs) {
        assert_equivalent(base, &got.outcome, &format!("{name} after worker-panic heal"));
        assert_eq!(got.outcome.shard_retries, 1, "{name}: capture retries stamped per config");
    }

    // Corrupt checkpoint at capture group 2: detected by checksum, healed
    // from the retained copy; without a retry budget it surfaces typed.
    let healed = faulted_sweep(FaultPlan::new().with(FaultKind::CorruptCheckpoint, 2), 1)
        .expect("corruption heals in the capture pass");
    for ((name, base), got) in bases.iter().zip(&healed.configs) {
        assert_equivalent(base, &got.outcome, &format!("{name} after corruption heal"));
    }
    match faulted_sweep(FaultPlan::new().with(FaultKind::CorruptCheckpoint, 2), 0) {
        Err(SimError::CheckpointCorrupt { index: 2, expected, found }) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected CheckpointCorrupt at group 2, got {other:?}"),
    }

    // Worker panic without a budget: the typed error names the group.
    match faulted_sweep(FaultPlan::new().with(FaultKind::WorkerPanic, 1), 0) {
        Err(SimError::ShardPanicked { index: 1, .. }) => {}
        other => panic!("expected ShardPanicked at group 1, got {other:?}"),
    }

    // Forced log exhaustion: the shared capture truncates every region,
    // so every config degrades its clusters — identically to standalone.
    let exhausted = faulted_sweep(FaultPlan::new().with(FaultKind::ExhaustLogBudget, 0), 0)
        .expect("degradation is not failure");
    for (name, m, policy) in config_axis() {
        let program = tiny(Benchmark::Twolf);
        let alone = RunSpec::new(&program, &m)
            .regimen(SamplingRegimen::new(12, 600))
            .total_insts(TOTAL)
            .seed(SEED)
            .shard_span(SPAN)
            .policy(policy)
            .threads(4)
            .fault_plan(FaultPlan::new().with(FaultKind::ExhaustLogBudget, 0))
            .run()
            .expect("degradation is not failure");
        assert!(alone.clusters_degraded > 0, "{name}: zero budget must degrade");
        let got = exhausted.configs.iter().find(|c| c.name == name).unwrap();
        assert_equivalent(&alone, &got.outcome, &format!("{name} under forced exhaustion"));
    }
}

#[test]
fn amortization_beats_standalone_accounting() {
    // The telemetry invariant (the perf claim itself is benched in
    // rsr-bench at fig5 scale): with >1 config the modeled amortization
    // ratio must be under 1.0 — the sweep pays the cold pass once.
    let out = sweep_at(1, 1, 1);
    let ratio = out.amortization();
    assert!(
        ratio < 1.0,
        "sweep must amortize the cold pass across {} configs (ratio {ratio})",
        out.configs.len()
    );
    assert!(out.cold_wall <= out.wall, "cold pass is part of the sweep wall");
}
