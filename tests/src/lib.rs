//! Shared helpers for the cross-crate integration tests.

use rsr_core::{MachineConfig, RunSpec, SampleOutcome, SamplingRegimen, SimError, WarmupPolicy};
use rsr_isa::Program;
use rsr_workloads::{Benchmark, WorkloadParams};

/// A small, fast workload build for integration tests.
pub fn tiny(bench: Benchmark) -> Program {
    bench.build(&WorkloadParams { scale: 0.05, ..Default::default() })
}

/// The paper machine.
pub fn machine() -> MachineConfig {
    MachineConfig::paper()
}

/// A sampled run on the paper machine through the [`RunSpec`] entry point
/// — the shape almost every integration test wants.
pub fn sample(
    program: &Program,
    regimen: SamplingRegimen,
    total: u64,
    policy: WarmupPolicy,
    seed: u64,
) -> Result<SampleOutcome, SimError> {
    RunSpec::new(program, &machine())
        .regimen(regimen)
        .total_insts(total)
        .policy(policy)
        .seed(seed)
        .run()
}

/// True IPC from the unsampled cycle-accurate baseline on the paper
/// machine.
pub fn full_ipc(program: &Program, total: u64) -> f64 {
    RunSpec::new(program, &machine())
        .total_insts(total)
        .run_full()
        .expect("full baseline runs")
        .ipc()
}
