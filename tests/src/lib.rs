//! Shared helpers for the cross-crate integration tests.

use rsr_core::MachineConfig;
use rsr_isa::Program;
use rsr_workloads::{Benchmark, WorkloadParams};

/// A small, fast workload build for integration tests.
pub fn tiny(bench: Benchmark) -> Program {
    bench.build(&WorkloadParams { scale: 0.05, ..Default::default() })
}

/// The paper machine.
pub fn machine() -> MachineConfig {
    MachineConfig::paper()
}
