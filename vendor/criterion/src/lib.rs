//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small harness surface its benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `Bencher::iter` /
//! `iter_batched`, and `black_box`. Timing is a simple
//! median-of-samples wall-clock measurement printed to stdout — enough
//! to compare orders of magnitude, with none of criterion's statistics.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Controls how `iter_batched` amortizes setup cost. The stand-in runs
/// one routine call per setup regardless of the hint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { _parent: self, name, sample_size }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let n = self.sample_size;
        run_one(&name.into(), n, f);
    }

    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(1);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name.into()), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timed iterations for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.budget {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::with_capacity(samples), budget: samples };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {name}: no samples collected");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let best = b.samples[0];
    println!("  {name}: median {median:?} (best {best:?}, {} samples)", b.samples.len());
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("iter", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        c.sample_size(4);
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| v * 2,
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 4);
    }
}
