//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use — the
//! [`proptest!`] macro, range and `any::<T>()` strategies, tuple
//! composition, `collection::vec`, and the `prop_assert*` macros — as
//! plain random-sampling tests. There is no shrinking: a failing case
//! reports its inputs via the assertion message instead. Case generation
//! is deterministic per test (seeded from the test body's shape), so
//! failures reproduce.

use rand::prelude::*;

/// Re-exported generator type used by strategies.
pub type TestRng = StdRng;

/// A value generator: the (greatly simplified) strategy abstraction.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix edge values in: boundary bugs dominate integer bugs.
                match rng.gen_range(0u32..16) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.gen_range(0u32..16) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(core::marker::PhantomData<T>);

/// Builds the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// A strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy { element, size: Box::new(size) }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Failure type produced by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Builds the deterministic generator the [`proptest!`] macro uses
/// (kept here so consuming crates need no direct `rand` dependency).
pub fn new_rng(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// Deterministic per-test seed: hash of the test's name.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($a), stringify!($b), left, right, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($a), stringify!($b), format!($($fmt)*), left, right,
                file!(), line!()
            )));
        }
    }};
}

/// The test-block macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random samples.
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    // Without one.
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::new_rng(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                let mut inputs = String::new();
                $(
                    let value = ($strat).generate(&mut rng);
                    inputs.push_str(&format!(" {}={:?}", stringify!($arg), &value));
                    let $arg = value;
                )+
                let result = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\n inputs:{}",
                        case + 1,
                        config.cases,
                        e,
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// The customary glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, Arbitrary, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(a in 0u64..100, b in -3i32..=3) {
            prop_assert!(a < 100);
            prop_assert!((-3..=3).contains(&b));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
        }

        #[test]
        fn tuples_compose((v, n) in (crate::collection::vec(any::<u8>(), 1..5), 1u64..9)) {
            prop_assert!(!v.is_empty());
            prop_assert!((1..9).contains(&n), "n={}", n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_applies(x in 0u8..=255) {
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "proptest case")]
        fn failures_panic_with_context(x in 0u64..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
