//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of the `rand 0.8` API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], here xoshiro256++ seeded via
//! SplitMix64), uniform range sampling, Bernoulli draws, and slice
//! shuffling. Streams are stable across platforms and releases — schedules
//! and synthetic workloads depend on that — but they intentionally do NOT
//! match upstream `rand`'s streams.

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 bits of mantissa, same construction as uniform f64 below.
        uniform_f64(self.next_u64()) < p
    }

    /// Samples a value of a type with a standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        uniform_f64(rng.next_u64())
    }
}

#[inline]
fn uniform_f64(word: u64) -> f64 {
    // [0, 1) from the top 53 bits.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Marker for types with uniform range sampling support.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples from `[low, high]` (both bounds inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as i128 - low as i128) as u128 + 1;
                if span == 0 {
                    // Full-width range: every word is valid.
                    return rng.next_u64() as $t;
                }
                // Modulo sampling: the bias (< 2^-64 * span) is irrelevant
                // for simulation workload generation.
                let v = ((rng.next_u64() as u128) % span) as i128 + low as i128;
                v as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + uniform_f64(rng.next_u64()) * (high - low)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (uniform_f64(rng.next_u64()) as f32) * (high - low)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_for_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                <$t>::sample_inclusive(rng, self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start() <= self.end(), "empty range");
                <$t>::sample_inclusive(rng, *self.start(), *self.end())
            }
        }
    )*};
}

impl_range_for_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_for_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                <$t>::sample_inclusive(rng, self.start, self.end)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                <$t>::sample_inclusive(rng, *self.start(), *self.end())
            }
        }
    )*};
}

impl_range_for_float!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64 (the construction its authors recommend).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state; never yields the all-zero state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The customary glob-import surface.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
