#!/usr/bin/env bash
# Repository CI gate: build, tests, formatting, lints.
# Run from the repo root; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
# The supervision layer's fault matrix, by name: a fast, loud signal when
# only the fault-tolerance paths regress.
cargo test -q -p rsr-integration --test fault_injection
# The packed-log equivalence suite, by name: the compact representation
# must stay observationally identical to the seed's record layout.
cargo test -q -p rsr-integration --test packed_equivalence
# The leader/follower pipeline suite, by name: pipelined runs must stay
# bit-identical to the sequential engine at every (threads, depth).
cargo test -q -p rsr-integration --test pipeline_equivalence
# The partitioned-reconstruction suite, by name: index-driven per-set
# reverse scans must stay bit-identical to the sequential full scan at
# every reconstruction worker count.
cargo test -q -p rsr-integration --test recon_partition
# The sweep-engine suite, by name: every config of a one-cold-pass sweep
# must stay bit-identical to its standalone run, and supervision must
# compose unchanged through the capture pass.
cargo test -q -p rsr-integration --test sweep_equivalence
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
# Advisory (warn-only): the core engine should fail typed, not panic.
# clippy.toml exempts test code.
cargo clippy -p rsr-core -- -A warnings -W clippy::unwrap_used -W clippy::expect_used

# Bench-smoke regression guard: recon_ns_per_record is per-record, so the
# smoke run is comparable to the committed full-scale reference. A >25%
# regression fails hard on multi-core hosts; on starved CI boxes (<= 2
# cores) timing is too noisy, so the guard is advisory there. Both files
# may be JSON arrays (depth-1 row first) — compare the first occurrence.
if ./target/release/rsr bench --scale 0.05 --out target/BENCH_sample.smoke.json; then
  smoke_recon=$(grep -m1 '"recon_ns_per_record"' target/BENCH_sample.smoke.json \
    | sed 's/[^0-9.]//g')
  ref_recon=$(grep -m1 '"recon_ns_per_record"' BENCH_sample.json | sed 's/[^0-9.]//g')
  if awk -v s="$smoke_recon" -v r="$ref_recon" 'BEGIN { exit !(s > r * 1.25) }'; then
    echo "ci: recon_ns_per_record regressed: smoke $smoke_recon vs reference $ref_recon (+25% threshold)"
    if [ "$(nproc)" -gt 2 ]; then
      exit 1
    else
      echo "ci: advisory only on $(nproc)-core host (timing too noisy to gate)"
    fi
  else
    echo "ci: recon_ns_per_record ok: smoke $smoke_recon vs reference $ref_recon"
  fi
else
  echo "ci: bench emission failed (non-fatal)"
fi

# Sweep-smoke guard: a small sweep row must stay bit-identical to its
# standalone runs (hard everywhere — determinism, not timing) and must
# still amortize — the 4-config smoke sweep has to beat 4 independent
# runs with some margin (wall_ratio < 0.9; the full-scale reference row
# in BENCH_sample.json is not comparable, its ratio scales with its 20
# configs). Timing is advisory on starved <= 2-core hosts.
if ./target/release/rsr bench --scale 0.05 --sweep-smoke \
    --out target/BENCH_sweep.smoke.json; then
  if grep -q '"bit_identical": false' target/BENCH_sweep.smoke.json; then
    echo "ci: sweep smoke lost bit-identity vs standalone runs"
    exit 1
  fi
  smoke_ratio=$(grep -m1 '"wall_ratio"' target/BENCH_sweep.smoke.json | sed 's/[^0-9.]//g')
  if awk -v s="$smoke_ratio" 'BEGIN { exit !(s > 0.9) }'; then
    echo "ci: sweep stopped amortizing: smoke wall_ratio $smoke_ratio (>0.9 vs standalone runs)"
    if [ "$(nproc)" -gt 2 ]; then
      exit 1
    else
      echo "ci: advisory only on $(nproc)-core host (timing too noisy to gate)"
    fi
  else
    echo "ci: sweep amortization ok: smoke wall_ratio $smoke_ratio (bound 0.9)"
  fi
else
  echo "ci: sweep emission failed (non-fatal)"
fi

echo "ci: all checks passed"
