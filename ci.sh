#!/usr/bin/env bash
# Repository CI gate: build, tests, formatting, lints.
# Run from the repo root; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
# The supervision layer's fault matrix, by name: a fast, loud signal when
# only the fault-tolerance paths regress.
cargo test -q -p rsr-integration --test fault_injection
# The packed-log equivalence suite, by name: the compact representation
# must stay observationally identical to the seed's record layout.
cargo test -q -p rsr-integration --test packed_equivalence
# The leader/follower pipeline suite, by name: pipelined runs must stay
# bit-identical to the sequential engine at every (threads, depth).
cargo test -q -p rsr-integration --test pipeline_equivalence
# The partitioned-reconstruction suite, by name: index-driven per-set
# reverse scans must stay bit-identical to the sequential full scan at
# every reconstruction worker count.
cargo test -q -p rsr-integration --test recon_partition
# The sweep-engine suite, by name: every config of a one-cold-pass sweep
# must stay bit-identical to its standalone run, and supervision must
# compose unchanged through the capture pass.
cargo test -q -p rsr-integration --test sweep_equivalence
# The service fault matrix, by name: worker panics, corrupt cache entries,
# deadlines, overload shedding, stalls, and kill-and-restart recovery all
# must settle as typed statuses, and cache hits must stay bit-identical.
cargo test -q -p rsr-integration --test serve_robustness
# The functional-core equivalence suite, by name: the superblock fast
# path must retire bit-identical streams to the reference interpreter
# over randomized programs (page-crossing memory, division edges, halts
# mid-block).
cargo test -q -p rsr-integration --test func_equivalence
# The detailed-window kernel equivalence suite, by name: the SoA cache,
# packed gshare, bitset BTB, and inline RAS must stay bit-identical to
# their retained reference implementations over random access streams,
# reverse reconstruction with budget cuts, and real skip-log replays
# (ext-spill records, over-budget truncation).
cargo test -q -p rsr-integration --test timing_equivalence
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
# Hard gate: the core engine and its deps must fail typed, not panic.
# clippy.toml exempts test code.
cargo clippy -p rsr-core -- -A warnings -D clippy::unwrap_used -D clippy::expect_used

# Bench-smoke regression guard: recon_ns_per_record is per-record, so the
# smoke run is comparable to the committed full-scale reference. A >25%
# regression fails hard on multi-core hosts; on starved CI boxes (<= 2
# cores) timing is too noisy, so the guard is advisory there. Both files
# may be JSON arrays (depth-1 row first) — compare the first occurrence.
if ./target/release/rsr bench --scale 0.05 --out target/BENCH_sample.smoke.json; then
  smoke_recon=$(grep -m1 '"recon_ns_per_record"' target/BENCH_sample.smoke.json \
    | sed 's/[^0-9.]//g')
  ref_recon=$(grep -m1 '"recon_ns_per_record"' BENCH_sample.json | sed 's/[^0-9.]//g')
  if awk -v s="$smoke_recon" -v r="$ref_recon" 'BEGIN { exit !(s > r * 1.25) }'; then
    echo "ci: recon_ns_per_record regressed: smoke $smoke_recon vs reference $ref_recon (+25% threshold)"
    if [ "$(nproc)" -gt 2 ]; then
      exit 1
    else
      echo "ci: advisory only on $(nproc)-core host (timing too noisy to gate)"
    fi
  else
    echo "ci: recon_ns_per_record ok: smoke $smoke_recon vs reference $ref_recon"
  fi

  # Bit-identity cross-check (hard everywhere — determinism, not timing):
  # the smoke run's sampled IPC and record count are pure functions of the
  # functional core. These pins were produced by the reference
  # one-instruction-at-a-time interpreter at scale 0.05; any drift means
  # the superblock fast path, the semantic predecode, or the TLB layer
  # changed an architectural result.
  smoke_ipc=$(grep -m1 '"est_ipc"' target/BENCH_sample.smoke.json | sed 's/[^0-9.]//g')
  smoke_records=$(grep -m1 '"log_records"' target/BENCH_sample.smoke.json | sed 's/[^0-9.]//g')
  if [ "$smoke_ipc" != "0.033058" ] || [ "$smoke_records" != "730655" ]; then
    echo "ci: functional bit-identity broken: est_ipc $smoke_ipc (want 0.033058)," \
      "log_records $smoke_records (want 730655)"
    exit 1
  fi
  echo "ci: functional bit-identity ok: est_ipc $smoke_ipc, log_records $smoke_records"

  # Cold-MIPS floor: the rebuilt functional core holds >= 51 MIPS on this
  # smoke load (2.4x the pre-rebuild 21); gate at 30 to leave headroom
  # for host noise while still catching a wholesale fast-path regression
  # (e.g. the record sink falling out of the superblock loop). Timing, so
  # advisory on starved <= 2-core hosts.
  smoke_cold=$(grep -m1 '"cold_mips"' target/BENCH_sample.smoke.json | sed 's/[^0-9.]//g')
  if awk -v c="$smoke_cold" 'BEGIN { exit !(c < 30) }'; then
    echo "ci: cold-phase throughput regressed: $smoke_cold MIPS (floor 30)"
    if [ "$(nproc)" -gt 2 ]; then
      exit 1
    else
      echo "ci: advisory only on $(nproc)-core host (timing too noisy to gate)"
    fi
  else
    echo "ci: cold-phase throughput ok: $smoke_cold MIPS (floor 30)"
  fi

  # PHT-reconstruction guard: like recon_ns_per_record, the per-record
  # cost is scale-free, so the smoke run compares to the full-scale
  # reference. The last-writer index dropped this >3x; a >25% regression
  # means the indexed fast path fell back to the legacy HashMap walk.
  # Timing, so advisory on starved <= 2-core hosts.
  smoke_pht=$(grep -m1 '"recon_pht_ns_per_record"' target/BENCH_sample.smoke.json \
    | sed 's/[^0-9.]//g')
  ref_pht=$(grep -m1 '"recon_pht_ns_per_record"' BENCH_sample.json | sed 's/[^0-9.]//g')
  if awk -v s="$smoke_pht" -v r="$ref_pht" 'BEGIN { exit !(s > r * 1.25) }'; then
    echo "ci: recon_pht_ns_per_record regressed: smoke $smoke_pht vs reference $ref_pht (+25% threshold)"
    if [ "$(nproc)" -gt 2 ]; then
      exit 1
    else
      echo "ci: advisory only on $(nproc)-core host (timing too noisy to gate)"
    fi
  else
    echo "ci: recon_pht_ns_per_record ok: smoke $smoke_pht vs reference $ref_pht"
  fi

  # Hot-MIPS floor: the SoA detailed-window kernels hold well above this
  # on the smoke load; the floor catches a wholesale regression (e.g. the
  # hierarchy kernel falling out of line or a per-predict allocation
  # returning). Timing, so advisory on starved <= 2-core hosts.
  smoke_hot=$(grep -m1 '"hot_mips"' target/BENCH_sample.smoke.json | sed 's/[^0-9.]//g')
  if awk -v h="$smoke_hot" 'BEGIN { exit !(h < 1.5) }'; then
    echo "ci: hot-phase throughput regressed: $smoke_hot MIPS (floor 1.5)"
    if [ "$(nproc)" -gt 2 ]; then
      exit 1
    else
      echo "ci: advisory only on $(nproc)-core host (timing too noisy to gate)"
    fi
  else
    echo "ci: hot-phase throughput ok: $smoke_hot MIPS (floor 1.5)"
  fi
else
  echo "ci: bench emission failed (non-fatal)"
fi

# Sweep-smoke guard: a small sweep row must stay bit-identical to its
# standalone runs (hard everywhere — determinism, not timing) and must
# still amortize — the 4-config smoke sweep has to beat 4 independent
# runs with some margin (wall_ratio < 0.9; the full-scale reference row
# in BENCH_sample.json is not comparable, its ratio scales with its 20
# configs). Timing is advisory on starved <= 2-core hosts.
if ./target/release/rsr bench --scale 0.05 --sweep-smoke \
    --out target/BENCH_sweep.smoke.json; then
  if grep -q '"bit_identical": false' target/BENCH_sweep.smoke.json; then
    echo "ci: sweep smoke lost bit-identity vs standalone runs"
    exit 1
  fi
  smoke_ratio=$(grep -m1 '"wall_ratio"' target/BENCH_sweep.smoke.json | sed 's/[^0-9.]//g')
  if awk -v s="$smoke_ratio" 'BEGIN { exit !(s > 0.9) }'; then
    echo "ci: sweep stopped amortizing: smoke wall_ratio $smoke_ratio (>0.9 vs standalone runs)"
    if [ "$(nproc)" -gt 2 ]; then
      exit 1
    else
      echo "ci: advisory only on $(nproc)-core host (timing too noisy to gate)"
    fi
  else
    echo "ci: sweep amortization ok: smoke wall_ratio $smoke_ratio (bound 0.9)"
  fi
else
  echo "ci: sweep emission failed (non-fatal)"
fi

# Sweep replay regression guard: replay the committed row's 20-config
# grid at smoke scale and gate wall_ratio at +25% over the pinned
# reference. The committed fig5 row (wall_ratio ~0.25) is not directly
# comparable at scale 0.05 (fixed overheads dominate shorter windows),
# so the reference is a pinned smoke-scale measurement of the same grid
# (~0.43 on this code; the pre-refactor replay path measured ~0.74).
# Bit-identity is hard everywhere; timing advisory on <= 2-core hosts.
if ./target/release/rsr bench --scale 0.05 --sweep-configs 20 \
    --out target/BENCH_sweep.grid.json; then
  if grep -q '"bit_identical": false' target/BENCH_sweep.grid.json; then
    echo "ci: 20-config sweep lost bit-identity vs standalone runs"
    exit 1
  fi
  for key in '"replay_threads"' '"index_builds_shared"' '"restore_bytes_per_config"'; do
    if ! grep -q "$key" target/BENCH_sweep.grid.json; then
      echo "ci: sweep row missing expected key $key"
      exit 1
    fi
  done
  grid_ratio=$(grep -m1 '"wall_ratio"' target/BENCH_sweep.grid.json | sed 's/[^0-9.]//g')
  if awk -v s="$grid_ratio" 'BEGIN { exit !(s > 0.55) }'; then
    echo "ci: sweep replay regressed: 20-config wall_ratio $grid_ratio (bound 0.55 = ~1.25x pinned 0.43)"
    if [ "$(nproc)" -gt 2 ]; then
      exit 1
    else
      echo "ci: advisory only on $(nproc)-core host (timing too noisy to gate)"
    fi
  else
    echo "ci: sweep replay ok: 20-config wall_ratio $grid_ratio (bound 0.55)"
  fi
else
  echo "ci: sweep grid emission failed (non-fatal)"
fi

# Serve smoke: a real daemon process on the loopback, driven through the
# CLI. The second submission must be a cache hit with the same IPC line,
# a flipped byte in the stored entry must be quarantined and recomputed,
# and a drain must bring the daemon down with exit 0.
serve_cache=target/serve-smoke-cache
serve_addr=127.0.0.1:7413
rm -rf "$serve_cache"
./target/release/rsr serve --cache "$serve_cache" --addr "$serve_addr" --scale 0.05 &
serve_pid=$!
for _ in $(seq 1 50); do
  if ./target/release/rsr submit --addr "$serve_addr" --stats >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
submit_job() {
  ./target/release/rsr submit twolf --addr "$serve_addr" \
    --clusters 8 --len 300 -n 100000 --seed 7
}
cold=$(submit_job)
echo "ci: serve cold: $cold"
grep -q "computed:" <<<"$cold"
hit=$(submit_job)
echo "ci: serve hit:  $hit"
grep -q "cache_hit:" <<<"$hit"
strip_run_details() { sed 's/^[0-9a-f]* [a-z_]*: //; s/, [0-9]* attempts*$//' <<<"$1"; }
if [ "$(strip_run_details "$cold")" != "$(strip_run_details "$hit")" ]; then
  echo "ci: serve cache hit drifted from the computed result"
  exit 1
fi
# Truncate the stored entry mid-payload: the daemon must detect the
# corruption, quarantine the file, and recompute the same answer.
entry=$(ls "$serve_cache"/*.rsrc | head -1)
truncate -s 40 "$entry"
recomputed=$(submit_job)
echo "ci: serve heal: $recomputed"
grep -q "recomputed:" <<<"$recomputed"
if [ "$(strip_run_details "$cold")" != "$(strip_run_details "$recomputed")" ]; then
  echo "ci: serve recompute drifted from the original result"
  exit 1
fi
ls "$serve_cache"/*.rsrc.quarantined >/dev/null
./target/release/rsr submit --addr "$serve_addr" --drain
wait "$serve_pid"
echo "ci: serve smoke ok (cold, cache hit, quarantine+recompute, drain)"

echo "ci: all checks passed"
