#!/usr/bin/env bash
# Repository CI gate: build, tests, formatting, lints.
# Run from the repo root; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all checks passed"
