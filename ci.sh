#!/usr/bin/env bash
# Repository CI gate: build, tests, formatting, lints.
# Run from the repo root; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
# The supervision layer's fault matrix, by name: a fast, loud signal when
# only the fault-tolerance paths regress.
cargo test -q -p rsr-integration --test fault_injection
# The packed-log equivalence suite, by name: the compact representation
# must stay observationally identical to the seed's record layout.
cargo test -q -p rsr-integration --test packed_equivalence
# The leader/follower pipeline suite, by name: pipelined runs must stay
# bit-identical to the sequential engine at every (threads, depth).
cargo test -q -p rsr-integration --test pipeline_equivalence
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
# Advisory (warn-only): the core engine should fail typed, not panic.
# clippy.toml exempts test code.
cargo clippy -p rsr-core -- -A warnings -W clippy::unwrap_used -W clippy::expect_used

# Advisory (non-fatal): smoke-scale perf trajectory. The committed
# BENCH_sample.json at the repo root is the full-scale reference; this
# emission just proves the emitter still runs, into target/ so the tree
# stays clean.
./target/release/rsr bench --scale 0.02 --out target/BENCH_sample.smoke.json \
  || echo "ci: bench emission failed (non-fatal)"

echo "ci: all checks passed"
