#!/usr/bin/env bash
# Repository CI gate: build, tests, formatting, lints.
# Run from the repo root; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
# The supervision layer's fault matrix, by name: a fast, loud signal when
# only the fault-tolerance paths regress.
cargo test -q -p rsr-integration --test fault_injection
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
# Advisory (warn-only): the core engine should fail typed, not panic.
# clippy.toml exempts test code.
cargo clippy -p rsr-core -- -A warnings -W clippy::unwrap_used -W clippy::expect_used

echo "ci: all checks passed"
